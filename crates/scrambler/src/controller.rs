//! The [`Machine`]: a memory controller with a configurable memory-bus
//! transform, BIOS options, and a DIMM socket.
//!
//! This is the unit the experiments move DIMMs between: a victim Skylake
//! box, an attacker's same-generation box, an FPGA-equipped analysis rig
//! (a machine with the scrambler disabled), or a future machine whose
//! "scrambler" is a strong cipher engine from `coldboot-memenc`.
//!
//! Storage is indexed by *canonical cell position* (channel, rank, bank
//! group, bank, row, block), not by physical address: a DIMM carried to a
//! machine with a different address interleaving will be read back
//! permuted, which is exactly why the paper's attack model requires a
//! same-generation CPU on the attacker's side.

use crate::ddr3::{mix64, Ddr3Scrambler};
use crate::ddr4::Ddr4Scrambler;
use crate::transform::{MemoryTransform, Plaintext};
use coldboot_dram::geometry::{DramGeometry, DramLocation};
use coldboot_dram::mapping::{AddressMapping, Microarchitecture};
use coldboot_dram::module::DramModule;
use std::error::Error;
use std::fmt;

/// BIOS configuration bits relevant to the attack surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BiosConfig {
    /// Whether the memory scrambler is enabled. The paper's analysis rig
    /// used a motherboard whose BIOS exposed this switch.
    pub scrambler_enabled: bool,
    /// Whether the scrambler seed is regenerated each boot. The paper found
    /// vendor BIOSes that reuse the seed — a bonus weakness.
    pub reset_seed_on_boot: bool,
}

impl Default for BiosConfig {
    /// Scrambler on, seed reset every boot (the secure configuration).
    fn default() -> Self {
        Self {
            scrambler_enabled: true,
            reset_seed_on_boot: true,
        }
    }
}

impl BiosConfig {
    /// Scrambler switched off (the analysis rig / FPGA-equivalent
    /// configuration).
    pub fn scrambler_disabled() -> Self {
        Self {
            scrambler_enabled: false,
            reset_seed_on_boot: true,
        }
    }

    /// Scrambler on but with the vendor bug that reuses the seed across
    /// boots.
    pub fn buggy_seed_reuse() -> Self {
        Self {
            scrambler_enabled: true,
            reset_seed_on_boot: false,
        }
    }
}

/// Context handed to a transform factory at each boot.
#[derive(Debug, Clone)]
pub struct BootContext {
    /// The boot-time random seed (already accounts for the BIOS seed-reuse
    /// bug).
    pub seed: u64,
    /// The machine's address mapping.
    pub mapping: AddressMapping,
}

/// Builds the bus transform at each (re)boot.
pub type TransformFactory = Box<dyn Fn(&BootContext) -> Box<dyn MemoryTransform> + Send + Sync>;

/// Errors from [`Machine`] memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineError {
    /// No module is socketed.
    NoModule,
    /// A module is already socketed.
    SocketOccupied,
    /// The module size does not match the controller's populated capacity.
    ModuleSizeMismatch {
        /// Capacity the controller expects.
        expected: u64,
        /// Size of the offered module.
        got: u64,
    },
    /// The access runs past the end of memory.
    OutOfBounds {
        /// Requested address.
        addr: u64,
        /// Requested length.
        len: usize,
        /// Total capacity.
        capacity: u64,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoModule => write!(f, "no DRAM module socketed"),
            MachineError::SocketOccupied => write!(f, "socket already holds a module"),
            MachineError::ModuleSizeMismatch { expected, got } => {
                write!(f, "module size {got} does not match capacity {expected}")
            }
            MachineError::OutOfBounds {
                addr,
                len,
                capacity,
            } => write!(f, "access {addr:#x}+{len} exceeds capacity {capacity:#x}"),
        }
    }
}

impl Error for MachineError {}

/// A simulated computer: controller + transform + BIOS + DIMM socket.
pub struct Machine {
    uarch: Microarchitecture,
    mapping: AddressMapping,
    bios: BiosConfig,
    machine_id: u64,
    boot_count: u64,
    transform: Box<dyn MemoryTransform>,
    factory: Option<TransformFactory>,
    module: Option<DramModule>,
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("uarch", &self.uarch)
            .field("bios", &self.bios)
            .field("machine_id", &self.machine_id)
            .field("boot_count", &self.boot_count)
            .field("transform", &self.transform.name())
            .field("module", &self.module.as_ref().map(|m| m.serial()))
            .finish()
    }
}

impl Machine {
    /// Creates a machine whose bus transform is the stock scrambler for the
    /// microarchitecture (or plaintext if the BIOS disables scrambling).
    pub fn new(
        uarch: Microarchitecture,
        geometry: DramGeometry,
        bios: BiosConfig,
        machine_id: u64,
    ) -> Self {
        let mapping = AddressMapping::new(uarch, geometry);
        let mut machine = Self {
            uarch,
            mapping,
            bios,
            machine_id,
            boot_count: 0,
            transform: Box::new(Plaintext),
            factory: None,
            module: None,
        };
        machine.apply_boot();
        machine
    }

    /// Creates a machine with a custom transform factory (e.g. a strong
    /// cipher engine replacing the scrambler).
    pub fn with_transform_factory(
        uarch: Microarchitecture,
        geometry: DramGeometry,
        bios: BiosConfig,
        machine_id: u64,
        factory: TransformFactory,
    ) -> Self {
        let mapping = AddressMapping::new(uarch, geometry);
        let mut machine = Self {
            uarch,
            mapping,
            bios,
            machine_id,
            boot_count: 0,
            transform: Box::new(Plaintext),
            factory: Some(factory),
            module: None,
        };
        machine.apply_boot();
        machine
    }

    fn boot_seed(&self) -> u64 {
        let epoch = if self.bios.reset_seed_on_boot {
            self.boot_count
        } else {
            0
        };
        mix64(self.machine_id, epoch.wrapping_mul(0x1234_5678_9ABC_DEF1) ^ 0xB007)
    }

    fn apply_boot(&mut self) {
        let ctx = BootContext {
            seed: self.boot_seed(),
            mapping: self.mapping.clone(),
        };
        self.transform = if let Some(factory) = &self.factory {
            factory(&ctx)
        } else if !self.bios.scrambler_enabled {
            Box::new(Plaintext)
        } else {
            match self.uarch {
                Microarchitecture::SandyBridge | Microarchitecture::IvyBridge => {
                    Box::new(Ddr3Scrambler::new(ctx.mapping, ctx.seed))
                }
                Microarchitecture::Skylake => Box::new(Ddr4Scrambler::new(ctx.mapping, ctx.seed)),
            }
        };
    }

    /// Reboots the machine: a new scrambler seed is drawn (unless the BIOS
    /// has the seed-reuse bug). DRAM contents are untouched — exactly the
    /// warm-reboot scenario of the paper's Figures 3c/3e.
    pub fn reboot(&mut self) {
        self.boot_count += 1;
        self.apply_boot();
    }

    /// Reboots with a new BIOS configuration (entering setup and flipping
    /// the scrambler toggle, as the paper's analysis rig allows).
    pub fn reboot_with_bios(&mut self, bios: BiosConfig) {
        self.bios = bios;
        self.reboot();
    }

    /// The machine's microarchitecture.
    pub fn microarchitecture(&self) -> Microarchitecture {
        self.uarch
    }

    /// The machine's address mapping.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Current BIOS configuration.
    pub fn bios(&self) -> BiosConfig {
        self.bios
    }

    /// Name of the active bus transform.
    pub fn transform_name(&self) -> &'static str {
        self.transform.name()
    }

    /// The active bus transform.
    pub fn transform(&self) -> &dyn MemoryTransform {
        self.transform.as_ref()
    }

    /// Total populated capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.mapping.geometry().capacity_bytes()
    }

    /// Seats a module.
    ///
    /// # Errors
    ///
    /// Fails if the socket is occupied or the module size does not match
    /// the controller capacity.
    pub fn insert_module(&mut self, mut module: DramModule) -> Result<(), MachineError> {
        if self.module.is_some() {
            return Err(MachineError::SocketOccupied);
        }
        if module.len() as u64 != self.capacity() {
            return Err(MachineError::ModuleSizeMismatch {
                expected: self.capacity(),
                got: module.len() as u64,
            });
        }
        module.power_on();
        self.module = Some(module);
        Ok(())
    }

    /// Removes the module, cutting its power (it starts decaying).
    ///
    /// # Errors
    ///
    /// Fails if no module is socketed.
    pub fn remove_module(&mut self) -> Result<DramModule, MachineError> {
        let mut module = self.module.take().ok_or(MachineError::NoModule)?;
        module.power_off();
        Ok(module)
    }

    /// The socketed module, if any.
    pub fn module(&self) -> Option<&DramModule> {
        self.module.as_ref()
    }

    /// Mutable access to the socketed module (e.g. to freeze it in place
    /// before pulling it, as in the paper's Figure 2).
    pub fn module_mut(&mut self) -> Option<&mut DramModule> {
        self.module.as_mut()
    }

    fn check_bounds(&self, addr: u64, len: usize) -> Result<(), MachineError> {
        if addr.checked_add(len as u64).is_none_or(|end| end > self.capacity()) {
            return Err(MachineError::OutOfBounds {
                addr,
                len,
                capacity: self.capacity(),
            });
        }
        Ok(())
    }

    /// The canonical cell offset for a DRAM location — the module-internal
    /// byte position of the start of that block.
    fn canonical_block_offset(&self, loc: DramLocation) -> usize {
        let g = self.mapping.geometry();
        let mut index = u64::from(loc.channel);
        index = index * u64::from(g.ranks) + u64::from(loc.rank);
        index = index * u64::from(g.bank_groups) + u64::from(loc.bank_group);
        index = index * u64::from(g.banks_per_group) + u64::from(loc.bank);
        index = index * u64::from(g.rows) + u64::from(loc.row);
        index = index * u64::from(g.blocks_per_row) + u64::from(loc.block);
        (index as usize) * coldboot_dram::BLOCK_BYTES
    }

    fn for_each_block<F>(&mut self, addr: u64, len: usize, mut f: F) -> Result<(), MachineError>
    where
        F: FnMut(&mut DramModule, &dyn MemoryTransform, u64, usize, usize, usize),
    {
        self.check_bounds(addr, len)?;
        if self.module.is_none() {
            return Err(MachineError::NoModule);
        }
        let mut cursor = addr;
        let end = addr + len as u64;
        let mut data_pos = 0usize;
        while cursor < end {
            let block_base = cursor & !63;
            let in_block = (cursor - block_base) as usize;
            let take = ((end - cursor) as usize).min(64 - in_block);
            let loc = self.mapping.decompose(block_base);
            let cell_offset = self.canonical_block_offset(loc) + in_block;
            // lint:allow(panic): self.module was checked for None on entry
            let module = self.module.as_mut().expect("checked above");
            f(
                module,
                self.transform.as_ref(),
                block_base,
                in_block,
                cell_offset,
                data_pos,
            );
            data_pos += take;
            cursor = block_base + 64;
        }
        Ok(())
    }

    /// Writes `data` at physical address `addr` through the bus transform.
    ///
    /// # Errors
    ///
    /// Fails if no module is socketed or the range is out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MachineError> {
        let end = addr + data.len() as u64;
        self.for_each_block(
            addr,
            data.len(),
            |module, transform, block_base, in_block, cell_offset, data_pos| {
                let take = ((end - (block_base + in_block as u64)) as usize).min(64 - in_block);
                let mut chunk = data[data_pos..data_pos + take].to_vec();
                transform.apply(block_base + in_block as u64, &mut chunk);
                module.write(cell_offset, &chunk);
            },
        )
    }

    /// Reads into `buf` from physical address `addr` through the bus
    /// transform.
    ///
    /// # Errors
    ///
    /// Fails if no module is socketed or the range is out of bounds.
    pub fn read(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), MachineError> {
        let len = buf.len();
        let end = addr + len as u64;
        // Collect per-block reads first to avoid aliasing `buf` in the
        // closure.
        let mut pieces: Vec<(usize, Vec<u8>)> = Vec::new();
        self.for_each_block(
            addr,
            len,
            |module, transform, block_base, in_block, cell_offset, data_pos| {
                let take = ((end - (block_base + in_block as u64)) as usize).min(64 - in_block);
                let mut chunk = vec![0u8; take];
                module.read(cell_offset, &mut chunk);
                transform.apply(block_base + in_block as u64, &mut chunk);
                pieces.push((data_pos, chunk));
            },
        )?;
        for (pos, chunk) in pieces {
            buf[pos..pos + chunk.len()].copy_from_slice(&chunk);
        }
        Ok(())
    }

    /// Dumps `len` bytes starting at `addr` as software sees them (through
    /// the descrambler) — what the paper's bare-metal GRUB module captures.
    ///
    /// # Errors
    ///
    /// Fails if no module is socketed or the range is out of bounds.
    pub fn dump(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, MachineError> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf)?;
        Ok(buf)
    }

    /// Fills all of memory with one byte value through the transform
    /// (what `memset` over the whole address space would store).
    ///
    /// # Errors
    ///
    /// Fails if no module is socketed.
    pub fn fill(&mut self, value: u8) -> Result<(), MachineError> {
        let capacity = self.capacity();
        let chunk = vec![value; 1 << 16];
        let mut addr = 0u64;
        while addr < capacity {
            let take = ((capacity - addr) as usize).min(chunk.len());
            self.write(addr, &chunk[..take])?;
            addr += take as u64;
        }
        Ok(())
    }

    /// Reads raw cells, bypassing the transform (the FPGA-style debug view).
    ///
    /// # Errors
    ///
    /// Fails if no module is socketed or the range is out of bounds.
    pub fn peek_raw(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, MachineError> {
        let mut out = vec![0u8; len];
        let end = addr + len as u64;
        self.for_each_block(
            addr,
            len,
            |module, _transform, block_base, in_block, cell_offset, data_pos| {
                let take = ((end - (block_base + in_block as u64)) as usize).min(64 - in_block);
                let mut chunk = vec![0u8; take];
                module.read(cell_offset, &mut chunk);
                out[data_pos..data_pos + take].copy_from_slice(&chunk);
            },
        )?;
        Ok(out)
    }

    /// Writes raw cells, bypassing the transform (the FPGA writing
    /// unscrambled data).
    ///
    /// # Errors
    ///
    /// Fails if no module is socketed or the range is out of bounds.
    pub fn poke_raw(&mut self, addr: u64, data: &[u8]) -> Result<(), MachineError> {
        let end = addr + data.len() as u64;
        self.for_each_block(
            addr,
            data.len(),
            |module, _transform, block_base, in_block, cell_offset, data_pos| {
                let take = ((end - (block_base + in_block as u64)) as usize).min(64 - in_block);
                module.write(cell_offset, &data[data_pos..data_pos + take]);
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skylake() -> Machine {
        Machine::new(
            Microarchitecture::Skylake,
            DramGeometry::tiny_test(),
            BiosConfig::default(),
            1,
        )
    }

    fn with_module(mut m: Machine) -> Machine {
        let size = m.capacity() as usize;
        m.insert_module(DramModule::new(size, 99)).unwrap();
        m
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = with_module(skylake());
        let data: Vec<u8> = (0..300).map(|i| i as u8).collect();
        m.write(0x1234, &data).unwrap();
        let mut buf = vec![0u8; 300];
        m.read(0x1234, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn raw_cells_are_scrambled() {
        let mut m = with_module(skylake());
        m.write(0, &[0u8; 64]).unwrap();
        let raw = m.peek_raw(0, 64).unwrap();
        assert_ne!(raw, vec![0u8; 64], "zeros must be scrambled on the bus");
        // And the raw value of a zero block IS the scrambler key.
        let ks = m.transform().keystream(0);
        assert_eq!(&raw[..], &ks[..]);
    }

    #[test]
    fn scrambler_disabled_stores_plaintext() {
        let mut m = with_module(Machine::new(
            Microarchitecture::Skylake,
            DramGeometry::tiny_test(),
            BiosConfig::scrambler_disabled(),
            1,
        ));
        m.write(64, b"visible").unwrap();
        let raw = m.peek_raw(64, 7).unwrap();
        assert_eq!(&raw[..], b"visible");
    }

    #[test]
    fn reboot_changes_keystream() {
        let mut m = skylake();
        let before = m.transform().keystream(0);
        m.reboot();
        let after = m.transform().keystream(0);
        assert_ne!(before, after);
    }

    #[test]
    fn buggy_bios_reuses_seed() {
        let mut m = Machine::new(
            Microarchitecture::Skylake,
            DramGeometry::tiny_test(),
            BiosConfig::buggy_seed_reuse(),
            1,
        );
        let before = m.transform().keystream(0);
        m.reboot();
        assert_eq!(before, m.transform().keystream(0));
    }

    #[test]
    fn different_machines_have_different_keys() {
        let a = Machine::new(
            Microarchitecture::Skylake,
            DramGeometry::tiny_test(),
            BiosConfig::default(),
            1,
        );
        let b = Machine::new(
            Microarchitecture::Skylake,
            DramGeometry::tiny_test(),
            BiosConfig::default(),
            2,
        );
        assert_ne!(a.transform().keystream(0), b.transform().keystream(0));
    }

    #[test]
    fn module_transplant_preserves_raw_cells() {
        let mut victim = with_module(skylake());
        victim.write(0x2000, b"round keys live here").unwrap();
        let raw_before = victim.peek_raw(0x2000, 20).unwrap();

        let module = victim.remove_module().unwrap();
        assert!(!module.is_powered());

        let mut attacker = Machine::new(
            Microarchitecture::Skylake,
            DramGeometry::tiny_test(),
            BiosConfig::scrambler_disabled(),
            2,
        );
        attacker.insert_module(module).unwrap();
        // Same generation => same canonical layout => raw cells readable at
        // the same physical addresses.
        let raw_after = attacker.peek_raw(0x2000, 20).unwrap();
        assert_eq!(raw_before, raw_after);
        // With the attacker's scrambler off, the dump shows the victim's
        // scrambled bytes directly.
        assert_eq!(attacker.dump(0x2000, 20).unwrap(), raw_before);
    }

    #[test]
    fn cross_generation_transplant_garbles_addresses() {
        let g = DramGeometry::ddr3_dual_channel_4gib();
        let small = DramGeometry {
            rows: 64,
            ..g
        };
        let mut snb = Machine::new(
            Microarchitecture::SandyBridge,
            small,
            BiosConfig::scrambler_disabled(),
            1,
        );
        let size = snb.capacity() as usize;
        snb.insert_module(DramModule::new(size, 5)).unwrap();
        let data: Vec<u8> = (0..=255).cycle().take(1 << 16).map(|b: u16| b as u8).collect();
        snb.write(0, &data).unwrap();
        let module = snb.remove_module().unwrap();

        let mut ivb = Machine::new(
            Microarchitecture::IvyBridge,
            small,
            BiosConfig::scrambler_disabled(),
            2,
        );
        ivb.insert_module(module).unwrap();
        let read_back = ivb.dump(0, 1 << 16).unwrap();
        assert_ne!(
            read_back, data,
            "different interleavings must permute the view"
        );
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = with_module(skylake());
        let cap = m.capacity();
        assert!(matches!(
            m.write(cap - 3, &[0u8; 8]),
            Err(MachineError::OutOfBounds { .. })
        ));
        let mut buf = [0u8; 1];
        assert!(m.read(cap, &mut buf).is_err());
    }

    #[test]
    fn socket_rules() {
        let mut m = skylake();
        let mut buf = [0u8; 1];
        assert_eq!(m.read(0, &mut buf), Err(MachineError::NoModule));
        let size = m.capacity() as usize;
        m.insert_module(DramModule::new(size, 1)).unwrap();
        assert_eq!(
            m.insert_module(DramModule::new(size, 2)),
            Err(MachineError::SocketOccupied)
        );
        let wrong = DramModule::new(64, 3);
        let mut empty = skylake();
        assert!(matches!(
            empty.insert_module(wrong),
            Err(MachineError::ModuleSizeMismatch { .. })
        ));
    }

    #[test]
    fn fill_writes_everything() {
        let mut m = with_module(skylake());
        m.fill(0xEE).unwrap();
        let mut buf = vec![0u8; 128];
        m.read(m.capacity() - 128, &mut buf).unwrap();
        assert_eq!(buf, vec![0xEE; 128]);
    }

    #[test]
    fn reboot_after_write_garbles_reads() {
        let mut m = with_module(skylake());
        m.write(0, b"before reboot").unwrap();
        m.reboot();
        let mut buf = [0u8; 13];
        m.read(0, &mut buf).unwrap();
        assert_ne!(&buf, b"before reboot");
    }
}
