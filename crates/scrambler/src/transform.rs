//! The [`MemoryTransform`] trait: what a memory interface does to data on
//! its way to and from the DIMM.
//!
//! Figure 1 of the paper: the transform is a symmetric XOR with a keystream
//! that depends only on the *physical address* and boot-time state — never
//! on the data. Scramblers, plaintext buses, and strong CTR-mode cipher
//! engines all fit this one interface, which is what lets the same attack
//! code run unchanged against every defense.

use std::fmt::Debug;

/// A symmetric, address-keyed XOR transform on 64-byte memory blocks.
///
/// Implementors produce a keystream per block-aligned physical address;
/// scrambling and descrambling are the same XOR.
pub trait MemoryTransform: Debug + Send + Sync {
    /// The 64-byte keystream for the block containing `phys_addr`
    /// (the low 6 bits of `phys_addr` are ignored).
    fn keystream(&self, phys_addr: u64) -> [u8; 64];

    /// Short human-readable name ("DDR4 scrambler", "ChaCha8 engine", ...).
    fn name(&self) -> &'static str;

    /// XORs the keystream into `data`, which starts at byte `phys_addr`
    /// (not necessarily block-aligned) and may span multiple blocks.
    fn apply(&self, phys_addr: u64, data: &mut [u8]) {
        let mut addr = phys_addr;
        let mut remaining = data;
        while !remaining.is_empty() {
            let block_base = addr & !63;
            let offset = (addr - block_base) as usize;
            let take = remaining.len().min(64 - offset);
            let ks = self.keystream(block_base);
            let (chunk, rest) = remaining.split_at_mut(take);
            for (d, k) in chunk.iter_mut().zip(&ks[offset..offset + take]) {
                *d ^= k;
            }
            remaining = rest;
            addr = block_base + 64;
        }
    }
}

/// The identity transform: a DDR/DDR2-era plaintext memory bus.
#[derive(Debug, Clone, Copy, Default)]
pub struct Plaintext;

impl MemoryTransform for Plaintext {
    fn keystream(&self, _phys_addr: u64) -> [u8; 64] {
        [0u8; 64]
    }

    fn name(&self) -> &'static str {
        "plaintext (no scrambling)"
    }

    fn apply(&self, _phys_addr: u64, _data: &mut [u8]) {
        // Identity; skip the XOR work.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy transform whose keystream is the block address repeated.
    #[derive(Debug)]
    struct AddrEcho;

    impl MemoryTransform for AddrEcho {
        fn keystream(&self, phys_addr: u64) -> [u8; 64] {
            let mut ks = [0u8; 64];
            for (i, chunk) in ks.chunks_mut(8).enumerate() {
                chunk.copy_from_slice(&(phys_addr & !63).to_le_bytes());
                let _ = i;
            }
            ks
        }

        fn name(&self) -> &'static str {
            "addr-echo"
        }
    }

    #[test]
    fn apply_twice_is_identity() {
        let t = AddrEcho;
        let original: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let mut data = original.clone();
        t.apply(30, &mut data); // unaligned start, spans 4 blocks
        assert_ne!(data, original);
        t.apply(30, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn apply_respects_block_boundaries() {
        let t = AddrEcho;
        // Writing bytes 60..68 must use block 0's keystream for 60..64 and
        // block 64's keystream for 64..68.
        let mut data = [0u8; 8];
        t.apply(60, &mut data);
        let ks0 = t.keystream(0);
        let ks1 = t.keystream(64);
        assert_eq!(&data[..4], &ks0[60..64]);
        assert_eq!(&data[4..], &ks1[..4]);
    }

    #[test]
    fn unaligned_application_is_consistent_with_aligned() {
        let t = AddrEcho;
        let mut whole = vec![0u8; 128];
        t.apply(0, &mut whole);
        let mut part = vec![0u8; 50];
        t.apply(39, &mut part);
        assert_eq!(&part[..], &whole[39..89]);
    }

    #[test]
    fn plaintext_is_identity() {
        let mut data = vec![7u8; 100];
        Plaintext.apply(3, &mut data);
        assert_eq!(data, vec![7u8; 100]);
        assert_eq!(Plaintext.keystream(1234), [0u8; 64]);
    }
}
