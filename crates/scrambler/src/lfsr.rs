//! Linear feedback shift registers.
//!
//! Intel's VLSI-DAT 2011 paper discloses that the Westmere scrambler
//! generates its keystream with LFSRs seeded from a boot-time random value
//! and a portion of the address bits. LFSRs are *linear* — every output bit
//! is an XOR of seed bits — which is the root cause of every correlation the
//! cold boot attack exploits.

/// A Fibonacci LFSR over a 16-bit state.
///
/// The feedback taps default to the maximal-length polynomial
/// `x¹⁶ + x¹⁴ + x¹³ + x¹¹ + 1` (taps at state bits 0, 2, 3, 5 for a
/// right-shifting register), giving a period of 2¹⁶ − 1.
///
/// ```
/// use coldboot_scrambler::lfsr::Lfsr16;
/// let mut lfsr = Lfsr16::new(0xACE1);
/// let first = lfsr.next_word();
/// let mut again = Lfsr16::new(0xACE1);
/// assert_eq!(again.next_word(), first); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
    taps: u16,
}

/// The default maximal-length tap mask for [`Lfsr16`].
pub const LFSR16_MAXIMAL_TAPS: u16 = 0b0000_0000_0010_1101;

impl Lfsr16 {
    /// Creates an LFSR with the maximal-length taps. A zero seed is mapped
    /// to 1 (the all-zero state is a fixed point of any LFSR).
    pub fn new(seed: u16) -> Self {
        Self::with_taps(seed, LFSR16_MAXIMAL_TAPS)
    }

    /// Creates an LFSR with explicit feedback taps.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is zero.
    pub fn with_taps(seed: u16, taps: u16) -> Self {
        assert!(taps != 0, "an LFSR needs at least one feedback tap");
        Self {
            state: if seed == 0 { 1 } else { seed },
            taps,
        }
    }

    /// Current register state.
    pub fn state(&self) -> u16 {
        self.state
    }

    /// Advances one step and returns the output bit.
    #[inline]
    pub fn step(&mut self) -> bool {
        let feedback = (self.state & self.taps).count_ones() & 1;
        let out = self.state & 1;
        self.state = (self.state >> 1) | ((feedback as u16) << 15);
        out != 0
    }

    /// Produces the next 16 output bits as a word (LSB first).
    pub fn next_word(&mut self) -> u16 {
        let mut w = 0u16;
        for i in 0..16 {
            if self.step() {
                w |= 1 << i;
            }
        }
        w
    }

    /// Fills a byte buffer with keystream.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(2) {
            let w = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// A Galois LFSR over a 32-bit state (used where a longer period matters,
/// e.g. deriving per-boot seed material).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaloisLfsr32 {
    state: u32,
    taps: u32,
}

/// A maximal-length Galois tap mask for 32 bits
/// (`x³² + x²² + x² + x + 1`).
pub const GALOIS32_MAXIMAL_TAPS: u32 = 0x8020_0003;

impl GaloisLfsr32 {
    /// Creates a Galois LFSR; zero seeds are mapped to 1.
    pub fn new(seed: u32) -> Self {
        Self {
            state: if seed == 0 { 1 } else { seed },
            taps: GALOIS32_MAXIMAL_TAPS,
        }
    }

    /// Advances one step and returns the output bit.
    #[inline]
    pub fn step(&mut self) -> bool {
        let out = self.state & 1;
        self.state >>= 1;
        if out != 0 {
            self.state ^= self.taps;
        }
        out != 0
    }

    /// Produces the next 32 output bits as a word (LSB first).
    pub fn next_word(&mut self) -> u32 {
        let mut w = 0u32;
        for i in 0..32 {
            if self.step() {
                w |= 1 << i;
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn maximal_lfsr16_has_full_period() {
        let mut lfsr = Lfsr16::new(1);
        let start = lfsr.state();
        let mut count = 0u32;
        loop {
            lfsr.step();
            count += 1;
            if lfsr.state() == start {
                break;
            }
            assert!(count <= 70000, "period runaway");
        }
        assert_eq!(count, 65535, "not a maximal-length polynomial");
    }

    #[test]
    fn zero_seed_is_mapped_away() {
        let mut lfsr = Lfsr16::new(0);
        // Must not be stuck at zero.
        let w = lfsr.next_word();
        let w2 = lfsr.next_word();
        assert!(w != 0 || w2 != 0);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = Lfsr16::new(0x1234);
        let mut b = Lfsr16::new(0x4321);
        let wa: Vec<u16> = (0..8).map(|_| a.next_word()).collect();
        let wb: Vec<u16> = (0..8).map(|_| b.next_word()).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn fill_covers_odd_lengths() {
        let mut lfsr = Lfsr16::new(77);
        let mut buf = [0u8; 7];
        lfsr.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn lfsr_output_is_linear_in_seed() {
        // The defining weakness: keystream(seed_a ^ seed_b ^ seed_c) ==
        // keystream(a) ^ keystream(b) ^ keystream(c). (XOR of an odd number
        // of streams, since the affine zero-seed correction cancels.)
        let (a, b, c) = (0x1357u16, 0x2468, 0x7fff);
        let stream = |s: u16| -> Vec<u16> {
            let mut l = Lfsr16::new(s);
            (0..8).map(|_| l.next_word()).collect()
        };
        let sa = stream(a);
        let sb = stream(b);
        let sc = stream(c);
        let sx = stream(a ^ b ^ c);
        for i in 0..8 {
            assert_eq!(sx[i], sa[i] ^ sb[i] ^ sc[i], "word {i}");
        }
    }

    #[test]
    fn galois32_produces_distinct_states() {
        let mut lfsr = GaloisLfsr32::new(0xDEADBEEF);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(lfsr.next_word()), "early cycle");
        }
    }

    #[test]
    #[should_panic(expected = "feedback tap")]
    fn rejects_zero_taps() {
        Lfsr16::with_taps(1, 0);
    }
}
