//! Electrical statistics of memory-bus traffic — the reason scramblers
//! exist at all.
//!
//! §II-C: "DRAM traffic is not random and successive 1s and 0s can be
//! observed on the data bus under normal workloads. As a result, energy can
//! potentially be concentrated at certain frequencies or all the data lines
//! can switch in parallel resulting in high di/dt." Scrambling makes bus
//! bits "transition nearly 50% of the time", flattening the power spectrum.
//! §IV adds that a strong cipher does this at least as well, since secure
//! keystream is indistinguishable from random.
//!
//! This module measures those properties for any [`MemoryTransform`]: the
//! per-lane transition rate across burst beats, the worst simultaneous
//! switching burst (the di/dt proxy), and DC balance.

use crate::transform::MemoryTransform;
use serde::{Deserialize, Serialize};

/// Width of the DDR data bus in bits.
pub const BUS_BITS: usize = 64;

/// Electrical statistics of a simulated burst stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusTransitionStats {
    /// Bursts analyzed.
    pub bursts: usize,
    /// Fraction of lane-beat boundaries where the lane toggled (0.5 is the
    /// scrambler design target).
    pub transition_rate: f64,
    /// The largest number of lanes that switched simultaneously on any
    /// beat boundary (64 = the full-bus di/dt worst case).
    pub worst_simultaneous_switch: u32,
    /// Fraction of beat boundaries where more than 48 of 64 lanes switched
    /// at once — the sustained-di/dt proxy that scrambling suppresses.
    pub high_switch_fraction: f64,
    /// Fraction of driven bits that are ones (DC balance; 0.5 is ideal).
    pub ones_fraction: f64,
}

/// Simulates writing `data` to the bus at `base_addr` through `transform`
/// and measures what the wires see.
///
/// Each 64-byte block becomes one 8-beat burst on a 64-bit bus; transitions
/// are counted per lane between consecutive beats, including the boundary
/// between bursts.
///
/// # Panics
///
/// Panics if `data` is empty or not a whole number of 64-byte blocks.
pub fn analyze_bus_traffic(
    transform: &dyn MemoryTransform,
    base_addr: u64,
    data: &[u8],
) -> BusTransitionStats {
    assert!(
        !data.is_empty() && data.len().is_multiple_of(64),
        "bus traffic must be whole bursts"
    );
    let mut wire = data.to_vec();
    transform.apply(base_addr, &mut wire);

    let beats: Vec<u64> = wire
        .chunks_exact(8)
        // lint:allow(panic): chunks_exact(8) yields exactly 8 bytes
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    let mut transitions = 0u64;
    let mut worst = 0u32;
    let mut high_switch = 0u64;
    let mut ones = 0u64;
    for (i, &beat) in beats.iter().enumerate() {
        ones += u64::from(beat.count_ones());
        if i > 0 {
            let switched = (beat ^ beats[i - 1]).count_ones();
            transitions += u64::from(switched);
            worst = worst.max(switched);
            if switched > 48 {
                high_switch += 1;
            }
        }
    }
    let boundaries = (beats.len() - 1) as u64;
    BusTransitionStats {
        bursts: data.len() / 64,
        transition_rate: if boundaries == 0 {
            0.0
        } else {
            transitions as f64 / (boundaries * BUS_BITS as u64) as f64
        },
        worst_simultaneous_switch: worst,
        high_switch_fraction: if boundaries == 0 {
            0.0
        } else {
            high_switch as f64 / boundaries as f64
        },
        ones_fraction: ones as f64 / (beats.len() * BUS_BITS) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddr4::Ddr4Scrambler;
    use crate::transform::Plaintext;
    use coldboot_dram::geometry::DramGeometry;
    use coldboot_dram::mapping::{AddressMapping, Microarchitecture};

    fn ddr4() -> Ddr4Scrambler {
        Ddr4Scrambler::new(
            AddressMapping::new(
                Microarchitecture::Skylake,
                DramGeometry::ddr4_dual_channel_8gib(),
            ),
            42,
        )
    }

    #[test]
    fn constant_plaintext_never_transitions() {
        // The pathological workload: all-zeros then all-ones in alternating
        // blocks concentrates energy exactly as §II-C warns.
        let stats = analyze_bus_traffic(&Plaintext, 0, &[0u8; 64 * 16]);
        assert_eq!(stats.transition_rate, 0.0);
        assert_eq!(stats.ones_fraction, 0.0);
    }

    #[test]
    fn alternating_plaintext_is_the_di_dt_worst_case() {
        let mut data = Vec::new();
        for i in 0..16 {
            data.extend_from_slice(&[if i % 2 == 0 { 0x00u8 } else { 0xFF }; 64]);
        }
        let stats = analyze_bus_traffic(&Plaintext, 0, &data);
        // Full-bus simultaneous switching: all 64 lanes at once.
        assert_eq!(stats.worst_simultaneous_switch, 64);
    }

    #[test]
    fn scrambling_constant_data_transitions_near_half() {
        let stats = analyze_bus_traffic(&ddr4(), 0, &[0u8; 64 * 256]);
        assert!(
            (0.44..0.56).contains(&stats.transition_rate),
            "transition rate {}",
            stats.transition_rate
        );
        assert!((0.45..0.55).contains(&stats.ones_fraction));
    }

    #[test]
    fn scrambling_tames_the_worst_case_workload() {
        let mut data = Vec::new();
        for i in 0..256 {
            data.extend_from_slice(&[if i % 2 == 0 { 0x00u8 } else { 0xFF }; 64]);
        }
        let plain = analyze_bus_traffic(&Plaintext, 0, &data);
        let scrambled = analyze_bus_traffic(&ddr4(), 0, &data);
        assert_eq!(plain.worst_simultaneous_switch, 64);
        // Every block boundary switches the full bus in plaintext (1 of 8
        // beat boundaries); scrambled traffic almost never does. (The
        // DDR4 key structure itself can make one intra-block boundary
        // switch heavily when a group mask is dense, so the *worst* single
        // event is not the discriminator — the sustained fraction is.)
        assert!(plain.high_switch_fraction > 0.12, "{}", plain.high_switch_fraction);
        assert!(
            scrambled.high_switch_fraction < 0.02,
            "high-switch fraction {}",
            scrambled.high_switch_fraction
        );
        assert!(scrambled.transition_rate > 0.4);
    }

    #[test]
    #[should_panic(expected = "whole bursts")]
    fn partial_bursts_rejected() {
        analyze_bus_traffic(&Plaintext, 0, &[0u8; 100]);
    }
}
