//! Models of the memory scramblers in Intel DDR3 and DDR4 memory
//! controllers, reverse-engineered at the level of observable behaviour by
//! the paper.
//!
//! * [`lfsr`] — linear feedback shift registers, the PRNGs Intel's 2011
//!   VLSI-DAT publication discloses as the scrambler keystream source.
//! * [`transform`] — the [`transform::MemoryTransform`] trait: a symmetric,
//!   address-keyed XOR keystream applied to every 64-byte block crossing the
//!   memory bus. Implemented by both scrambler generations, by plaintext
//!   (DDR/DDR2) interfaces, and by the strong cipher engines in
//!   `coldboot-memenc`.
//! * [`ddr3`] — the SandyBridge-era scrambler: **16 keys per channel**, and
//!   the fatal property that re-reading after a reboot collapses the entire
//!   memory to a *single universal key* (Bauer et al., reproduced here as
//!   the baseline).
//! * [`ddr4`] — the Skylake scrambler: **4096 keys per channel**, byte-pair
//!   XOR invariants inside every key (the paper's litmus-test target), no
//!   cross-boot collapse, and stable key-sharing across boots.
//! * [`controller`] — a [`controller::Machine`]: memory controller + BIOS
//!   configuration + socketed module, the unit the transplant workflow moves
//!   DIMMs between.
//!
//! # Example
//!
//! ```
//! use coldboot_scrambler::controller::{BiosConfig, Machine};
//! use coldboot_dram::geometry::DramGeometry;
//! use coldboot_dram::mapping::Microarchitecture;
//! use coldboot_dram::module::DramModule;
//!
//! let mut machine = Machine::new(
//!     Microarchitecture::Skylake,
//!     DramGeometry::tiny_test(),
//!     BiosConfig::default(),
//!     /* machine id */ 1,
//! );
//! machine.insert_module(DramModule::new(machine.capacity() as usize, 7))?;
//! machine.write(0x1000, b"plaintext through the scrambler")?;
//! let mut buf = [0u8; 31];
//! machine.read(0x1000, &mut buf)?;
//! assert_eq!(&buf, b"plaintext through the scrambler");
//! // ... but the raw cells hold scrambled data:
//! let raw = machine.peek_raw(0x1000, 31)?;
//! assert_ne!(&raw[..], b"plaintext through the scrambler");
//! # Ok::<(), coldboot_scrambler::controller::MachineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus_stats;
pub mod controller;
pub mod ddr3;
pub mod ddr4;
pub mod lfsr;
pub mod transform;

pub use transform::MemoryTransform;

/// Number of distinct scrambler keys per channel in the DDR3 model
/// (Bauer et al., confirmed by the paper).
pub const DDR3_KEYS_PER_CHANNEL: usize = 16;

/// Number of distinct scrambler keys per channel in the Skylake DDR4 model
/// (the paper's Key Idea 1).
pub const DDR4_KEYS_PER_CHANNEL: usize = 4096;
