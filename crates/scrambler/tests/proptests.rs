//! Property-based tests for the scrambler models and the machine
//! controller.

use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::{AddressMapping, Microarchitecture};
use coldboot_dram::module::DramModule;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_scrambler::ddr3::Ddr3Scrambler;
use coldboot_scrambler::ddr4::Ddr4Scrambler;
use coldboot_scrambler::MemoryTransform;
use proptest::prelude::*;

fn geometry() -> DramGeometry {
    DramGeometry::tiny_test()
}

fn ddr4(seed: u64) -> Ddr4Scrambler {
    Ddr4Scrambler::new(
        AddressMapping::new(Microarchitecture::Skylake, geometry()),
        seed,
    )
}

/// The four §III-B invariants, evaluated directly.
fn invariants_hold(key: &[u8; 64]) -> bool {
    let w = |i: usize| u16::from_le_bytes([key[i], key[i + 1]]);
    [0usize, 16, 32, 48].iter().all(|&g| {
        w(g + 2) ^ w(g + 4) == w(g + 10) ^ w(g + 12)
            && w(g) ^ w(g + 6) == w(g + 8) ^ w(g + 14)
            && w(g) ^ w(g + 4) == w(g + 8) ^ w(g + 12)
            && w(g) ^ w(g + 2) == w(g + 8) ^ w(g + 10)
    })
}

proptest! {
    #[test]
    fn ddr4_keystreams_always_satisfy_invariants(seed in any::<u64>(), addr in any::<u64>()) {
        let s = ddr4(seed);
        let addr = addr % geometry().capacity_bytes();
        prop_assert!(invariants_hold(&s.keystream(addr)));
    }

    #[test]
    fn ddr4_apply_is_involutive(
        seed in any::<u64>(),
        addr in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 1..256),
    ) {
        let s = ddr4(seed);
        let addr = addr % (geometry().capacity_bytes() - 256);
        let mut work = data.clone();
        s.apply(addr, &mut work);
        s.apply(addr, &mut work);
        prop_assert_eq!(work, data);
    }

    #[test]
    fn ddr4_key_id_depends_only_on_address(seed1 in any::<u64>(), seed2 in any::<u64>(), addr in any::<u64>()) {
        let addr = addr % geometry().capacity_bytes();
        prop_assert_eq!(ddr4(seed1).key_id_of(addr), ddr4(seed2).key_id_of(addr));
    }

    #[test]
    fn ddr3_cross_boot_is_universal(seed1 in any::<u64>(), seed2 in any::<u64>(), addr in any::<u64>()) {
        prop_assume!(seed1 != seed2);
        let map = AddressMapping::new(Microarchitecture::SandyBridge, geometry());
        let a = Ddr3Scrambler::new(map.clone(), seed1);
        let b = Ddr3Scrambler::new(map, seed2);
        let addr = (addr % geometry().capacity_bytes()) & !63;
        // The XOR of the two keystreams must equal the XOR at address 0 of
        // the same channel (single universal key per channel).
        let ch = a.mapping().channel_of(addr);
        let base_addr = (0..geometry().capacity_bytes())
            .step_by(64)
            .find(|&x| a.mapping().channel_of(x) == ch)
            .expect("channel has blocks");
        let xor_here: Vec<u8> = a
            .keystream(addr)
            .iter()
            .zip(b.keystream(addr).iter())
            .map(|(x, y)| x ^ y)
            .collect();
        let xor_base: Vec<u8> = a
            .keystream(base_addr)
            .iter()
            .zip(b.keystream(base_addr).iter())
            .map(|(x, y)| x ^ y)
            .collect();
        prop_assert_eq!(xor_here, xor_base);
    }

    #[test]
    fn machine_read_write_round_trips(
        machine_id in any::<u64>(),
        addr in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 1..300),
    ) {
        let mut m = Machine::new(
            Microarchitecture::Skylake,
            geometry(),
            BiosConfig::default(),
            machine_id,
        );
        let capacity = m.capacity();
        let addr = addr % (capacity - 300);
        m.insert_module(DramModule::new(capacity as usize, 1)).expect("fresh socket");
        m.write(addr, &data).expect("in range");
        let mut buf = vec![0u8; data.len()];
        m.read(addr, &mut buf).expect("in range");
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn scrambled_write_equals_keystream_xor(
        machine_id in any::<u64>(),
        block_idx in 0u64..1024,
        data in any::<[u8; 64]>(),
    ) {
        let mut m = Machine::new(
            Microarchitecture::Skylake,
            geometry(),
            BiosConfig::default(),
            machine_id,
        );
        let capacity = m.capacity();
        m.insert_module(DramModule::new(capacity as usize, 1)).expect("fresh socket");
        let addr = (block_idx * 64) % capacity;
        m.write(addr, &data).expect("in range");
        let raw = m.peek_raw(addr, 64).expect("in range");
        let ks = m.transform().keystream(addr);
        for i in 0..64 {
            prop_assert_eq!(raw[i], data[i] ^ ks[i]);
        }
    }

    #[test]
    fn transplant_same_generation_preserves_view(
        id1 in any::<u64>(),
        id2 in any::<u64>(),
        addr in 0u64..1_000_000,
        data in any::<[u8; 32]>(),
    ) {
        // Raw cells written on one machine read back identically (raw) on
        // another machine of the same generation.
        let mut a = Machine::new(
            Microarchitecture::Skylake,
            geometry(),
            BiosConfig::default(),
            id1,
        );
        let capacity = a.capacity();
        let addr = addr % (capacity - 32);
        a.insert_module(DramModule::new(capacity as usize, 9)).expect("fresh socket");
        a.poke_raw(addr, &data).expect("in range");
        let module = a.remove_module().expect("socketed");
        let mut b = Machine::new(
            Microarchitecture::Skylake,
            geometry(),
            BiosConfig::default(),
            id2,
        );
        b.insert_module(module).expect("fresh socket");
        let raw = b.peek_raw(addr, 32).expect("in range");
        prop_assert_eq!(&raw[..], &data[..]);
    }
}
