//! True negative: the same struct zeroizes its key material on drop.
pub struct Expanded {
    pub round_keys: Vec<u32>,
}

impl Drop for Expanded {
    fn drop(&mut self) {
        for w in self.round_keys.iter_mut() {
            *w = 0;
        }
        std::hint::black_box(&self.round_keys);
    }
}
