//! True negative: metric labels carry names and counts only.
pub fn track(registry: &MetricsRegistry, key_count: usize) {
    registry.counter("search_recoveries").add(key_count as u64);
    registry.gauge(&format!("queue_depth_shard_{key_count}"));
}
