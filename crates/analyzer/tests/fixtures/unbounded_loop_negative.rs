pub fn poll(q: &Queue, shutdown: &AtomicBool) {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        q.poll();
    }
}
