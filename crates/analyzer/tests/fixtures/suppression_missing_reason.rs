//! A reasonless suppression is itself a finding and suppresses nothing.
pub fn checked(xs: &[u8]) -> u8 {
    // lint:allow(panic)
    *xs.first().unwrap()
}
