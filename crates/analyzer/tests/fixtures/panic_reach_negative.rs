//! Panic-reachability fixture (negative): the same shape, but the panic
//! is suppressed with a justification, so it is not treated as reachable
//! service-path state.

fn parse_len(header: &[u8]) -> usize {
    // lint:allow(panic): caller validates the 4-byte header before dispatch
    let bytes: [u8; 4] = header[..4].try_into().unwrap();
    u32::from_le_bytes(bytes) as usize
}

pub fn handle_connection(header: &[u8]) -> usize {
    parse_len(header)
}
