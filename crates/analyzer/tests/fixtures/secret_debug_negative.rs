//! True negative: `Debug` is hand-written and redacts the key bytes.
pub struct Recovered {
    pub master_key: [u8; 32],
}

impl std::fmt::Debug for Recovered {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recovered")
            .field("master_key", &"[redacted]")
            .finish()
    }
}
