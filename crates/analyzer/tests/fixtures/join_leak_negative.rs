//! Join-leak fixture (negative): the three clean shapes. A joined handle,
//! an explicit `let _ =` detach (the handle is deliberately discarded,
//! visibly), and a spawn whose handle escapes as the function's value —
//! the caller owns the join decision.

use std::thread;

pub fn joined() {
    let handle = thread::spawn(|| scan());
    let _ = handle.join();
}

pub fn detached_explicitly() {
    let _ = thread::spawn(|| scan());
}

pub fn handle_escapes() -> thread::JoinHandle<()> {
    thread::spawn(|| scan())
}

fn scan() {}
