//! True positive: a round key reaches a formatting macro.
pub fn leak(round_key: &[u8]) {
    println!("{:?}", round_key);
}
