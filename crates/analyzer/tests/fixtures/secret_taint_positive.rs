pub fn report(store: &Store) {
    let material = store.master_key;
    println!("debug: {material:?}");
}
