//! True positive: `Debug` derived on a struct holding key bytes.
#[derive(Debug, Clone)]
pub struct Recovered {
    pub master_key: [u8; 32],
}
