//! Helper-mediated truncation fixture, callee half. `to_word` narrows
//! its argument with an unchecked `as` cast — harmless for small inputs,
//! silent corruption for a 4 GiB record. `to_word_checked` is the fixed
//! form.

pub fn to_word(n: usize) -> u32 {
    n as u32
}

pub fn to_word_checked(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}
