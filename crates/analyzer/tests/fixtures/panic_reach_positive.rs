//! Panic-reachability fixture (positive): the connection path calls a
//! parsing helper that unwraps on malformed input, so one bad header
//! kills the connection silently.

fn parse_len(header: &[u8]) -> usize {
    let bytes: [u8; 4] = header[..4].try_into().unwrap();
    u32::from_le_bytes(bytes) as usize
}

pub fn handle_connection(header: &[u8]) -> usize {
    parse_len(header)
}
