//! True negative: widening a field width is not address arithmetic.
pub fn widen(width: u16) -> u64 {
    u64::from(width)
}
