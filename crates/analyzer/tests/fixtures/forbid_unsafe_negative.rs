//! True negative: crate root forbids unsafe code.
#![forbid(unsafe_code)]
pub fn f() {}
