pub fn intern(items: &[u64]) -> u32 {
    let count = items.len();
    count as u32
}
