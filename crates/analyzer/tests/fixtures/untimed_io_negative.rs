pub fn handle(mut stream: TcpStream) {
    if stream.set_read_timeout(Some(TIMEOUT)).is_err() {
        return;
    }
    let mut buf = [0u8; 64];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
