//! Zeroize-coverage fixture (negative): same secret-fed stash, but Drop
//! scrubs the buffer, so coverage is satisfied.

pub struct Stash {
    pub buf: Vec<u8>,
}

impl Drop for Stash {
    fn drop(&mut self) {
        for b in self.buf.iter_mut() {
            *b = 0;
        }
    }
}

pub fn capture(addr: u64) -> Stash {
    Stash {
        buf: crate::scramble::keystream(addr),
    }
}
