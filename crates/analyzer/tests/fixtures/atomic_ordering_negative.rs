//! Atomic-ordering fixture (negative): all three allowed shapes. A
//! Release store is a real publish done right; a Relaxed RMW is the
//! monotonic-counter pattern (the returned/accumulated value is the whole
//! message); a literal-bool store to a cancel-named flag is the
//! cooperative-cancellation pattern the rule's allowlist recognizes.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

pub fn publish_progress(slot: &AtomicUsize, blocks_done: usize) {
    slot.store(blocks_done, Ordering::Release);
}

pub fn bump_counter(counter: &AtomicUsize) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn request_cancel(cancel_flag: &AtomicBool) {
    cancel_flag.store(true, Ordering::Relaxed);
}
