//! Atomic-ordering fixture (positive): the scan publishes its high-water
//! block index with a Relaxed store. A reader that observes the index and
//! then reads the block buffer has no acquire edge back to the writes
//! that filled it — the classic publish-without-release bug.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn publish_progress(slot: &AtomicUsize, blocks_done: usize) {
    slot.store(blocks_done, Ordering::Relaxed);
}
