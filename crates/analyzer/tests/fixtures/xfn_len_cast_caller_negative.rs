//! Helper-mediated truncation fixture, caller half (negative): the
//! checked helper converts with `try_from`, so the same call shape is
//! clean.

pub fn record_header(buf: &[u8]) -> u32 {
    let total_len = buf.len();
    crate::words::to_word_checked(total_len)
}
