//! True positive: key-bearing struct in a victim-side crate without `Drop`.
pub struct Expanded {
    pub round_keys: Vec<u32>,
}
