//! Cross-function leak fixture, caller half: the key bytes arrive
//! through an innocently named helper and a renamed binding, then reach
//! a print sink.

pub fn report(state: &crate::export::State) {
    let material = crate::export::export_material(state);
    println!("recovered: {material:02x?}");
}
