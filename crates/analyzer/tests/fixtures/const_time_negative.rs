//! True negative: observing a key's *length* is not key-dependent.
pub fn valid(key: &[u8]) -> bool {
    key.len() == 32
}
