pub fn poll_forever(q: &Queue) {
    loop {
        q.poll();
    }
}
