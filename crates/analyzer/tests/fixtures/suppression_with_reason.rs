//! A justified suppression silences the finding.
pub fn checked(xs: &[u8]) -> u8 {
    // lint:allow(panic): caller guarantees xs is non-empty
    *xs.first().unwrap()
}
