//! True negative: only key *metadata* (a length) is printed.
pub fn report(key_len: usize) {
    println!("schedule length = {key_len}");
}
