pub fn intern(items: &[u64]) -> u32 {
    u32::try_from(items.len()).unwrap_or(u32::MAX)
}

pub fn span(start: u64, len: usize) -> usize {
    let end = start + len as u64;
    (end - start) as usize
}

pub fn masked(items: &[u64]) -> u8 {
    (items.len() & 0xff) as u8
}
