//! Counterpart to `xfn_event_loop_deep_positive.rs`: byte-identical call
//! chain and sleep, but no spawn — `drain_backlog` runs on whatever
//! thread calls it, no role reaches it, and nothing fires. Together the
//! pair pins that the *role graph*, not a lexical sleep scan, drives the
//! rule.

use std::thread;
use std::time::Duration;

pub fn run_once() {
    poll_once();
}

fn poll_once() {
    drain_backlog();
}

fn drain_backlog() {
    if backlog_empty() {
        return;
    }
    thread::sleep(Duration::from_millis(5));
}

fn backlog_empty() -> bool {
    true
}
