//! Zeroize-coverage fixture (positive): a struct whose byte buffer is
//! initialised from key-derived data but which has no Drop impl, so the
//! keystream lingers after the stash goes out of scope.

pub struct Stash {
    pub buf: Vec<u8>,
}

pub fn capture(addr: u64) -> Stash {
    Stash {
        buf: crate::scramble::keystream(addr),
    }
}
