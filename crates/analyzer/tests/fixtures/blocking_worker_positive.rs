//! Blocking-in-worker fixture (positive): the queue worker drains frames
//! straight off the socket via a helper, so a slow peer stalls every
//! queued job. The helper itself is `untimed-io`-clean (timeout set,
//! Interrupted handled) — the finding is about *where* the IO runs.

use std::io::Read;

pub fn read_frame(stream: &mut std::net::TcpStream, buf: &mut [u8]) -> std::io::Result<usize> {
    stream.set_read_timeout(Some(std::time::Duration::from_millis(50)))?;
    loop {
        match stream.read(buf) {
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            r => return r,
        }
    }
}

pub fn drain_worker(stream: &mut std::net::TcpStream, buf: &mut [u8]) -> std::io::Result<usize> {
    read_frame(stream, buf)
}
