//! Blocking-in-worker fixture (negative): the worker only touches
//! in-memory data; no socket IO is reachable from it, so nothing fires.

pub fn sum_frame(buf: &[u8]) -> usize {
    buf.iter().map(|b| *b as usize).sum()
}

pub fn drain_worker(buf: &[u8]) -> usize {
    sum_frame(buf)
}
