//! True positive: crate root missing `#![forbid(unsafe_code)]`.
pub fn f() {}
