//! Helper-mediated truncation fixture, caller half (positive): a raw
//! record length crosses into a helper that narrows it.

pub fn record_header(buf: &[u8]) -> u32 {
    let total_len = buf.len();
    crate::words::to_word(total_len)
}
