//! Channel-deadlock fixture (positive): both ends of a rendezvous channel
//! (`sync_channel(0)`) are used on the same thread. The send blocks until
//! a receiver arrives on *another* thread; with the recv below it on the
//! same one, the function parks forever.

use std::sync::mpsc;

pub fn rendezvous_with_self() -> u64 {
    let (tx, rx) = mpsc::sync_channel(0);
    tx.send(1u64).ok();
    rx.recv().unwrap_or(0)
}
