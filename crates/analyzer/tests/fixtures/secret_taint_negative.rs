pub fn report(blocks: usize) {
    let stats = blocks + 1;
    println!("blocks: {stats}");
    let rng = seed_from_u64(7);
    println!("rng ready: {rng:?}");
}
