//! True positive: a metric label interpolates recovered key bytes.
pub fn track(registry: &MetricsRegistry, master_key: [u8; 64]) {
    registry.counter(&format!("recoveries_{master_key:02x?}"));
}
