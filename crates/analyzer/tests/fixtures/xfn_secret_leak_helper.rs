//! Cross-function leak fixture, callee half. The function name carries
//! no secret stem ("material" is not in the lexicon), so the v2
//! callee-name heuristic sees nothing to taint at call sites; only the
//! computed summary knows the return value is the master key.

pub struct State {
    pub master_key: [u8; 32],
    pub rounds: usize,
}

pub fn export_material(state: &State) -> Vec<u8> {
    state.master_key.to_vec()
}
