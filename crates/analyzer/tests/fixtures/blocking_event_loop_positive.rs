//! Blocking-in-event-loop fixture (positive): the poll loop naps on a
//! fixed interval while it owns every connection — each idle sleep adds
//! latency to all of them. The spawn site names the role (`event`), the
//! sleep sits in a callee, and the role BFS connects the two.

use std::thread;
use std::time::Duration;

pub fn start_event_loop() -> thread::JoinHandle<()> {
    thread::spawn(|| poll_events())
}

fn poll_events() {
    loop {
        if drained() {
            return;
        }
        thread::sleep(Duration::from_millis(2));
    }
}

fn drained() -> bool {
    true
}
