//! Blocking-in-event-loop fixture (negative): the poll loop spins on a
//! readiness flag without sleeping or blocking, and the queue worker that
//! *does* block on its job queue carries the queue-worker role — blocking
//! on its own queue is its purpose, so nothing fires.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::thread;

pub fn start_event_loop(done: Arc<AtomicBool>) -> thread::JoinHandle<()> {
    thread::spawn(move || poll_events(&done))
}

fn poll_events(done: &AtomicBool) {
    while !done.load(Ordering::Acquire) {
        dispatch();
    }
}

fn dispatch() {}

pub fn start_worker(jobs: Receiver<u64>) -> thread::JoinHandle<()> {
    thread::spawn(move || drain_jobs(&jobs))
}

fn drain_jobs(jobs: &Receiver<u64>) {
    while let Ok(job) = jobs.recv() {
        run(job);
    }
}

fn run(_job: u64) {}
