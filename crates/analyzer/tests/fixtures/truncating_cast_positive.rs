//! True positive: address arithmetic truncated by `as u32`.
pub fn row_of(phys_addr: u64) -> u32 {
    (phys_addr >> 18) as u32
}
