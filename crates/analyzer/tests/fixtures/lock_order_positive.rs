pub fn enqueue(s: &Shared) {
    let q = lock(&s.queue);
    let j = lock(&s.jobs);
    drop(j);
    drop(q);
}

pub fn steal(s: &Shared) {
    let j = lock(&s.jobs);
    let q = lock(&s.queue);
    drop(q);
    drop(j);
}

pub fn reenter(s: &Shared) {
    let q = lock(&s.queue);
    let again = lock(&s.queue);
    drop(again);
    drop(q);
}
