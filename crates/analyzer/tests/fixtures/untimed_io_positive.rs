pub fn handle(mut stream: TcpStream) {
    let mut buf = [0u8; 64];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
}
