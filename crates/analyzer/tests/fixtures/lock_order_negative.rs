pub fn enqueue(s: &Shared) {
    let q = lock(&s.queue);
    let j = lock(&s.jobs);
    drop(j);
    drop(q);
}

pub fn drain(s: &Shared) {
    let q = lock(&s.queue);
    let j = lock(&s.jobs);
    drop(j);
    drop(q);
}

pub fn handoff(s: &Shared) {
    let j = lock(&s.jobs);
    drop(j);
    let q = lock(&s.queue);
    drop(q);
}
