//! True positive: early-exit equality on key bytes.
pub fn matches(key: &[u8], candidate_key: &[u8]) -> bool {
    key == candidate_key
}
