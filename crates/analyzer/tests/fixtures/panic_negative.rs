//! True negative: `unwrap` confined to a test module.
pub fn first(xs: &[u8]) -> Option<u8> {
    xs.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn first_works() {
        assert_eq!(super::first(&[7]).unwrap(), 7);
    }
}
