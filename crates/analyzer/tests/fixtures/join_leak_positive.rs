//! Join-leak fixture (positive): two ways to drop a JoinHandle on the
//! floor — a spawn in statement position, and a binding that is never
//! used again. Either way the thread's panic is lost and shutdown cannot
//! wait for it.

use std::thread;

pub fn fire_and_forget() {
    thread::spawn(|| scan());
}

pub fn bound_but_never_used() {
    let handle = thread::spawn(|| scan());
}

fn scan() {}
