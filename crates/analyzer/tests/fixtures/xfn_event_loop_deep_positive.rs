//! Interprocedural pin for `blocking-in-event-loop`: the sleep is *two*
//! calls deep from the spawn site. Nothing in the closure's own body
//! blocks, and nothing near the sleep says "event loop" — only the role
//! BFS over resolved call edges connects the spawn's inferred role to the
//! hazard. A per-function (v3) pass provably cannot make this connection:
//! the same sleep with the spawn removed is clean (see the lint_rules
//! test), so no lexical sleep scan could fire here without also firing
//! there.

use std::thread;
use std::time::Duration;

pub fn start_event_loop() -> thread::JoinHandle<()> {
    thread::spawn(|| poll_once())
}

fn poll_once() {
    drain_backlog();
}

fn drain_backlog() {
    if backlog_empty() {
        return;
    }
    thread::sleep(Duration::from_millis(5));
}

fn backlog_empty() -> bool {
    true
}
