//! Channel-deadlock fixture (negative): the pipelined-producer shape done
//! right. The rendezvous send runs on the spawned producer thread, the
//! recv on the spawning thread, the send's disconnect error is handled
//! (receiver dropping early is a normal shutdown, not a panic), and the
//! producer handle is joined.

use std::sync::mpsc;
use std::thread;

pub fn pipeline() -> u64 {
    let (tx, rx) = mpsc::sync_channel(0);
    let producer = thread::spawn(move || {
        if tx.send(1u64).is_err() {
            return;
        }
    });
    let got = rx.recv().unwrap_or(0);
    let _ = producer.join();
    got
}
