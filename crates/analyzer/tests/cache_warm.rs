//! The analysis cache's contract: a warm run re-analyzes nothing, an
//! edit re-analyzes exactly the touched file, and cached runs produce
//! byte-identical findings to cold runs.

use std::path::PathBuf;

use coldboot_analyzer::{lint_sources_with, LintConfig, LintOptions, SourceFile};

fn temp_cache_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "coldboot-lint-warm-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sources() -> Vec<SourceFile> {
    vec![
        SourceFile {
            path: "crates/a/src/lib.rs".to_string(),
            source: "pub fn ok() -> usize { 1 }\n".to_string(),
        },
        SourceFile {
            path: "crates/a/src/count.rs".to_string(),
            source: "pub fn intern(v: &[u8]) -> u32 { let n = v.len(); n as u32 }\n".to_string(),
        },
        SourceFile {
            path: "crates/b/src/lib.rs".to_string(),
            source: "pub fn fine(x: u64) -> u64 { x + 1 }\n".to_string(),
        },
    ]
}

#[test]
fn warm_run_reanalyzes_nothing_and_edit_reanalyzes_one_file() {
    let dir = temp_cache_dir("basic");
    let config = LintConfig::default();
    let opts = LintOptions {
        threads: 1,
        cache_dir: Some(dir.clone()),
        check_stale_allows: false,
    };
    let mut files = sources();

    let cold = lint_sources_with(&files, &config, &opts);
    assert_eq!(cold.stats.files, 3);
    assert_eq!(cold.stats.reanalyzed, 3, "cold run analyzes everything");
    assert_eq!(cold.stats.cached, 0);

    let warm = lint_sources_with(&files, &config, &opts);
    assert_eq!(warm.stats.reanalyzed, 0, "warm run must re-parse nothing");
    assert_eq!(warm.stats.cached, 3);
    assert_eq!(
        warm.findings, cold.findings,
        "cached findings must be byte-identical to cold findings"
    );

    // Touch exactly one file: only it is re-analyzed, and its finding is
    // gone while everything else still comes from the cache.
    files[1].source =
        "pub fn intern(v: &[u8]) -> u32 { u32::try_from(v.len()).unwrap_or(u32::MAX) }\n"
            .to_string();
    let after_edit = lint_sources_with(&files, &config, &opts);
    assert_eq!(after_edit.stats.reanalyzed, 1, "only the edited file re-parses");
    assert_eq!(after_edit.stats.cached, 2);
    assert!(
        after_edit.findings.iter().all(|f| f.rule != "lossy-len-cast"),
        "{:?}",
        after_edit.findings
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn callee_edit_invalidates_transitive_callers_only() {
    // Call chain A -> B -> C plus an unrelated sibling D. Editing C must
    // re-check C and its transitive callers (B, A) — the edit changes C's
    // summary, which is part of their dependency hash — while D stays
    // cached. The summary phase itself re-extracts only C: summary records
    // key on file content alone.
    let dir = temp_cache_dir("chain");
    let config = LintConfig::default();
    let opts = LintOptions {
        threads: 1,
        cache_dir: Some(dir.clone()),
        check_stale_allows: false,
    };
    let mut files = vec![
        SourceFile {
            path: "crates/x/src/a.rs".to_string(),
            source: "pub fn top() -> u32 { let n = crate::b::mid(); n as u32 }\n".to_string(),
        },
        SourceFile {
            path: "crates/x/src/b.rs".to_string(),
            source: "pub fn mid() -> usize { crate::c::base_val(&[]) }\n".to_string(),
        },
        SourceFile {
            path: "crates/x/src/c.rs".to_string(),
            source: "pub fn base_val(_buf: &[u8]) -> usize { 4 }\n".to_string(),
        },
        SourceFile {
            path: "crates/x/src/d.rs".to_string(),
            source: "pub fn other() -> usize { 7 }\n".to_string(),
        },
    ];

    let cold = lint_sources_with(&files, &config, &opts);
    assert_eq!(cold.stats.reanalyzed, 4);
    assert!(cold.findings.is_empty(), "{:?}", cold.findings);

    let warm = lint_sources_with(&files, &config, &opts);
    assert_eq!(warm.stats.reanalyzed, 0, "unchanged tree re-analyzes nothing");
    assert_eq!(warm.stats.cached, 4);
    assert_eq!(warm.stats.summarized, 0);
    assert_eq!(warm.stats.summary_cached, 4);

    // Edit only C so it now returns a length. The new summary ripples
    // through B (`mid` now returns a length) into A, whose `as u32`
    // becomes a helper-mediated lossy cast.
    files[2].source = "pub fn base_val(buf: &[u8]) -> usize { buf.len() }\n".to_string();
    let after = lint_sources_with(&files, &config, &opts);
    assert_eq!(after.stats.summarized, 1, "only C re-extracts facts");
    assert_eq!(after.stats.summary_cached, 3);
    assert_eq!(
        after.stats.reanalyzed, 3,
        "C plus transitive callers B and A re-check: {:?}",
        after.stats
    );
    assert_eq!(after.stats.cached, 1, "sibling D stays cached");
    assert_eq!(after.findings.len(), 1, "{:?}", after.findings);
    assert_eq!(after.findings[0].rule, "lossy-len-cast");
    assert_eq!(after.findings[0].file, "crates/x/src/a.rs");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_bump_invalidates_every_record_exactly_once() {
    // The cache folds `CACHE_VERSION` (and the rule-id list) into every
    // record key, so a version bump — like v2 → v3, which added the
    // spawn/channel/atomic fact lines — lands as a key mismatch on every
    // stored record. Simulate a previous-version cache by rewriting the
    // stored keys: the next run must invalidate and re-analyze everything
    // exactly once, after which a warm run re-analyzes zero files and the
    // findings are unchanged.
    let dir = temp_cache_dir("version");
    let config = LintConfig::default();
    let opts = LintOptions {
        threads: 1,
        cache_dir: Some(dir.clone()),
        check_stale_allows: false,
    };
    let files = sources();

    let cold = lint_sources_with(&files, &config, &opts);
    assert_eq!(cold.stats.reanalyzed, 3);

    // Stamp every record (.rec and .sum) with a stale key, the observable
    // effect of a cache written by a different CACHE_VERSION.
    let mut stamped = 0;
    for entry in std::fs::read_dir(&dir).expect("cache dir exists") {
        let path = entry.expect("dir entry").path();
        let text = std::fs::read_to_string(&path).expect("record is utf-8");
        let (header, rest) = text.split_once('\n').expect("record has a header");
        let magic = header.split('\t').next().expect("header has a magic");
        std::fs::write(&path, format!("{magic}\t{:016x}\n{rest}", 0u64)).expect("rewrite");
        stamped += 1;
    }
    assert_eq!(stamped, 6, "three .rec plus three .sum records");

    let bumped = lint_sources_with(&files, &config, &opts);
    assert_eq!(
        bumped.stats.reanalyzed, 3,
        "every stale-version record re-analyzes exactly once: {:?}",
        bumped.stats
    );
    assert_eq!(bumped.stats.summarized, 3, "facts re-extract too");
    assert_eq!(bumped.findings, cold.findings);

    let warm = lint_sources_with(&files, &config, &opts);
    assert_eq!(warm.stats.reanalyzed, 0, "fresh records are warm again");
    assert_eq!(warm.stats.summarized, 0);
    assert_eq!(warm.findings, cold.findings);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_disabled_always_reanalyzes() {
    let config = LintConfig::default();
    let opts = LintOptions {
        threads: 1,
        cache_dir: None,
        check_stale_allows: false,
    };
    let files = sources();
    let first = lint_sources_with(&files, &config, &opts);
    let second = lint_sources_with(&files, &config, &opts);
    assert_eq!(first.stats.reanalyzed, 3);
    assert_eq!(second.stats.reanalyzed, 3);
    assert_eq!(second.stats.cached, 0);
}

#[test]
fn parallel_and_sequential_runs_agree() {
    // Determinism across thread counts: the work-stealing fan-out merges
    // results back in file order, so findings are identical.
    let config = LintConfig::default();
    let files = sources();
    let seq = lint_sources_with(
        &files,
        &config,
        &LintOptions {
            threads: 1,
            cache_dir: None,
            check_stale_allows: false,
        },
    );
    let par = lint_sources_with(
        &files,
        &config,
        &LintOptions {
            threads: 8,
            cache_dir: None,
            check_stale_allows: false,
        },
    );
    assert_eq!(seq.findings, par.findings);
}
