//! End-to-end tests of the `coldboot-lint` binary: `--deny` exit codes
//! and `--baseline` suppression.
//!
//! These need the built binary, which only cargo provides
//! (`CARGO_BIN_EXE_*`); under the offline direct-rustc harness the env
//! var is absent at compile time and the tests no-op (the same flows are
//! driven by hand against `target/lintdev/coldboot-lint` there).

use std::path::Path;
use std::process::Command;

const BIN: Option<&str> = option_env!("CARGO_BIN_EXE_coldboot-lint");

const DIRTY: &str = "pub fn intern(v: &[u8]) -> u32 { let n = v.len(); n as u32 }\n";

fn write_workspace(root: &Path, source: &str) {
    let src = root.join("crates/x/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(src.join("lib.rs"), source).expect("write");
}

fn run(bin: &str, root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(bin)
        .arg("--root")
        .arg(root)
        .arg("--no-cache")
        .args(extra)
        .output()
        .expect("spawn coldboot-lint")
}

#[test]
fn warn_mode_exits_zero_deny_exits_one() {
    let Some(bin) = BIN else { return };
    let root = std::env::temp_dir().join(format!("coldboot-lint-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    write_workspace(&root, DIRTY);

    let warn = run(bin, &root, &[]);
    assert_eq!(warn.status.code(), Some(0), "warn mode reports but passes");
    assert!(String::from_utf8_lossy(&warn.stdout).contains("lossy-len-cast"));

    let deny = run(bin, &root, &["--deny"]);
    assert_eq!(deny.status.code(), Some(1), "--deny fails on findings");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn baseline_suppresses_and_unknown_flag_is_usage_error() {
    let Some(bin) = BIN else { return };
    let root = std::env::temp_dir().join(format!("coldboot-lint-cli-bl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    write_workspace(&root, DIRTY);
    let baseline = root.join("lint-baseline.txt");

    let write = run(
        bin,
        &root,
        &["--write-baseline", baseline.to_str().expect("utf8 path")],
    );
    assert_eq!(write.status.code(), Some(0));

    let denied = run(
        bin,
        &root,
        &["--deny", "--baseline", baseline.to_str().expect("utf8 path")],
    );
    assert_eq!(
        denied.status.code(),
        Some(0),
        "baselined findings must not fail --deny: {}",
        String::from_utf8_lossy(&denied.stdout)
    );

    let usage = run(bin, &root, &["--frobnicate"]);
    assert_eq!(usage.status.code(), Some(2), "unknown flags are usage errors");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sarif_output_is_well_formed() {
    let Some(bin) = BIN else { return };
    let root = std::env::temp_dir().join(format!("coldboot-lint-cli-sarif-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    write_workspace(&root, DIRTY);

    let out = run(bin, &root, &["--format", "sarif"]);
    let doc = String::from_utf8_lossy(&out.stdout);
    assert!(doc.contains("\"version\":\"2.1.0\""), "{doc}");
    assert!(doc.contains("\"ruleId\":\"lossy-len-cast\""), "{doc}");

    let _ = std::fs::remove_dir_all(&root);
}
