//! Fixture-driven integration tests for the lint rules.
//!
//! Every rule has at least one true-positive and one true-negative fixture
//! under `tests/fixtures/`. Fixtures are fed to [`lint_sources`] under
//! *virtual* workspace paths so the path-scoped rules (crypto-only
//! const-time, dram-only truncating-cast, crate-root forbid-unsafe) see
//! the location they police.

use coldboot_analyzer::{lint_sources, Finding, LintConfig, SourceFile};

fn lint(virtual_path: &str, source: &str) -> Vec<Finding> {
    lint_with(virtual_path, source, &LintConfig::default())
}

fn lint_with(virtual_path: &str, source: &str, config: &LintConfig) -> Vec<Finding> {
    let files = vec![SourceFile {
        path: virtual_path.to_string(),
        source: source.to_string(),
    }];
    lint_sources(&files, config)
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn secret_print_true_positive() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/secret_print_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["secret-print"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
    assert_eq!(findings[0].item.as_deref(), Some("round_key"));
}

#[test]
fn secret_print_true_negative() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/secret_print_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn metric_label_with_key_bytes_is_caught() {
    // The observability layer's hygiene rule (names, counts, durations
    // only) is enforced here: a counter label that interpolates key
    // material trips secret-print at the `format!` capture.
    let findings = lint(
        "crates/metrics/src/fix.rs",
        include_str!("fixtures/metric_label_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["secret-print"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
    assert_eq!(findings[0].item.as_deref(), Some("master_key"));
}

#[test]
fn metric_label_with_counts_only_is_clean() {
    // Counts and shard indices in labels are fine — `_count` is a benign
    // metadata tail even though `key` is a secret stem.
    let findings = lint(
        "crates/metrics/src/fix.rs",
        include_str!("fixtures/metric_label_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn secret_debug_true_positive() {
    // Placed outside crypto/veracrypt so only the Debug rule fires.
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/secret_debug_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["secret-debug"], "{findings:?}");
    assert_eq!(findings[0].item.as_deref(), Some("Recovered"));
}

#[test]
fn secret_debug_true_negative() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/secret_debug_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn zeroize_true_positive() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/zeroize_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["zeroize-drop"], "{findings:?}");
    assert_eq!(findings[0].item.as_deref(), Some("Expanded"));
}

#[test]
fn zeroize_true_negative() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/zeroize_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn zeroize_scoped_to_victim_crates() {
    // The same Drop-less struct outside crypto/veracrypt is attacker-side
    // working state and is not flagged.
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/zeroize_positive.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn const_time_true_positive() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/const_time_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["const-time"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn const_time_true_negative() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/const_time_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn forbid_unsafe_true_positive() {
    let findings = lint(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/forbid_unsafe_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["forbid-unsafe"], "{findings:?}");
}

#[test]
fn forbid_unsafe_true_negative() {
    let findings = lint(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/forbid_unsafe_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn truncating_cast_true_positive() {
    let findings = lint(
        "crates/dram/src/mapping.rs",
        include_str!("fixtures/truncating_cast_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["truncating-cast"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn truncating_cast_true_negative() {
    let findings = lint(
        "crates/dram/src/mapping.rs",
        include_str!("fixtures/truncating_cast_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_true_positive() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/panic_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["panic"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn panic_true_negative() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/panic_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn suppression_with_reason_silences_finding() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/suppression_with_reason.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn suppression_without_reason_is_itself_a_finding() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/suppression_missing_reason.rs"),
    );
    let got = rules(&findings);
    assert!(got.contains(&"panic"), "original finding must survive: {findings:?}");
    assert!(got.contains(&"suppression"), "reasonless allow must be reported: {findings:?}");
}

#[test]
fn config_allowlist_silences_matching_finding() {
    let config = LintConfig::parse(concat!(
        "[[allow]]\n",
        "rule = \"secret-debug\"\n",
        "path = \"crates/core/src/fix.rs\"\n",
        "item = \"Recovered\"\n",
        "reason = \"attacker-side output struct\"\n",
    ))
    .expect("valid allowlist");
    let findings = lint_with(
        "crates/core/src/fix.rs",
        include_str!("fixtures/secret_debug_positive.rs"),
        &config,
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn config_allowlist_is_path_scoped() {
    let config = LintConfig::parse(concat!(
        "[[allow]]\n",
        "rule = \"secret-debug\"\n",
        "path = \"crates/scrambler/\"\n",
        "reason = \"scoped elsewhere\"\n",
    ))
    .expect("valid allowlist");
    let findings = lint_with(
        "crates/core/src/fix.rs",
        include_str!("fixtures/secret_debug_positive.rs"),
        &config,
    );
    assert_eq!(rules(&findings), vec!["secret-debug"], "{findings:?}");
}
