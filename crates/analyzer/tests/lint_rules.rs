//! Fixture-driven integration tests for the lint rules.
//!
//! Every rule has at least one true-positive and one true-negative fixture
//! under `tests/fixtures/`. Fixtures are fed to [`lint_sources`] under
//! *virtual* workspace paths so the path-scoped rules (crypto-only
//! const-time, dram-only truncating-cast, crate-root forbid-unsafe) see
//! the location they police.

use coldboot_analyzer::{lint_sources, Finding, LintConfig, SourceFile};

fn lint(virtual_path: &str, source: &str) -> Vec<Finding> {
    lint_with(virtual_path, source, &LintConfig::default())
}

fn lint_with(virtual_path: &str, source: &str, config: &LintConfig) -> Vec<Finding> {
    let files = vec![SourceFile {
        path: virtual_path.to_string(),
        source: source.to_string(),
    }];
    lint_sources(&files, config)
}

fn lint_files(files: &[(&str, &str)]) -> Vec<Finding> {
    let files: Vec<SourceFile> = files
        .iter()
        .map(|(path, source)| SourceFile {
            path: path.to_string(),
            source: source.to_string(),
        })
        .collect();
    lint_sources(&files, &LintConfig::default())
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn secret_print_true_positive() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/secret_print_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["secret-print"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
    assert_eq!(findings[0].item.as_deref(), Some("round_key"));
}

#[test]
fn secret_print_true_negative() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/secret_print_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn metric_label_with_key_bytes_is_caught() {
    // The observability layer's hygiene rule (names, counts, durations
    // only) is enforced here: a counter label that interpolates key
    // material trips secret-print at the `format!` capture.
    let findings = lint(
        "crates/metrics/src/fix.rs",
        include_str!("fixtures/metric_label_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["secret-print"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
    assert_eq!(findings[0].item.as_deref(), Some("master_key"));
}

#[test]
fn metric_label_with_counts_only_is_clean() {
    // Counts and shard indices in labels are fine — `_count` is a benign
    // metadata tail even though `key` is a secret stem.
    let findings = lint(
        "crates/metrics/src/fix.rs",
        include_str!("fixtures/metric_label_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn secret_debug_true_positive() {
    // Placed outside crypto/veracrypt so only the Debug rule fires.
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/secret_debug_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["secret-debug"], "{findings:?}");
    assert_eq!(findings[0].item.as_deref(), Some("Recovered"));
}

#[test]
fn secret_debug_true_negative() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/secret_debug_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn zeroize_true_positive() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/zeroize_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["zeroize-drop"], "{findings:?}");
    assert_eq!(findings[0].item.as_deref(), Some("Expanded"));
}

#[test]
fn zeroize_true_negative() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/zeroize_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn zeroize_scoped_to_victim_crates() {
    // The same Drop-less struct outside crypto/veracrypt is attacker-side
    // working state and is not flagged.
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/zeroize_positive.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn const_time_true_positive() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/const_time_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["const-time"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn const_time_true_negative() {
    let findings = lint(
        "crates/crypto/src/fix.rs",
        include_str!("fixtures/const_time_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn forbid_unsafe_true_positive() {
    let findings = lint(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/forbid_unsafe_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["forbid-unsafe"], "{findings:?}");
}

#[test]
fn forbid_unsafe_true_negative() {
    let findings = lint(
        "crates/fixture/src/lib.rs",
        include_str!("fixtures/forbid_unsafe_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn truncating_cast_true_positive() {
    let findings = lint(
        "crates/dram/src/mapping.rs",
        include_str!("fixtures/truncating_cast_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["truncating-cast"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn truncating_cast_true_negative() {
    let findings = lint(
        "crates/dram/src/mapping.rs",
        include_str!("fixtures/truncating_cast_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_true_positive() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/panic_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["panic"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
}

#[test]
fn panic_true_negative() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/panic_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn suppression_with_reason_silences_finding() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/suppression_with_reason.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn suppression_without_reason_is_itself_a_finding() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/suppression_missing_reason.rs"),
    );
    let got = rules(&findings);
    assert!(got.contains(&"panic"), "original finding must survive: {findings:?}");
    assert!(got.contains(&"suppression"), "reasonless allow must be reported: {findings:?}");
}

#[test]
fn config_allowlist_silences_matching_finding() {
    let config = LintConfig::parse(concat!(
        "[[allow]]\n",
        "rule = \"secret-debug\"\n",
        "path = \"crates/core/src/fix.rs\"\n",
        "item = \"Recovered\"\n",
        "reason = \"attacker-side output struct\"\n",
    ))
    .expect("valid allowlist");
    let findings = lint_with(
        "crates/core/src/fix.rs",
        include_str!("fixtures/secret_debug_positive.rs"),
        &config,
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn config_allowlist_is_path_scoped() {
    let config = LintConfig::parse(concat!(
        "[[allow]]\n",
        "rule = \"secret-debug\"\n",
        "path = \"crates/scrambler/\"\n",
        "reason = \"scoped elsewhere\"\n",
    ))
    .expect("valid allowlist");
    let findings = lint_with(
        "crates/core/src/fix.rs",
        include_str!("fixtures/secret_debug_positive.rs"),
        &config,
    );
    assert_eq!(rules(&findings), vec!["secret-debug"], "{findings:?}");
}

// ---------------------------------------------------------------------------
// Dataflow rule families (coldboot-lint v2)
// ---------------------------------------------------------------------------

#[test]
fn lossy_len_cast_true_positive() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/lossy_len_cast_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["lossy-len-cast"], "{findings:?}");
    assert_eq!(findings[0].line, 3);
    assert_eq!(findings[0].item.as_deref(), Some("count"));
}

#[test]
fn lossy_len_cast_true_negative() {
    // try_from, wide-minus-wide spans, and mask-then-cast are all checked.
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/lossy_len_cast_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn secret_taint_true_positive() {
    // The secret is *renamed* before printing, so token-level secret-print
    // cannot see it; only dataflow taint tracking can.
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/secret_taint_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["secret-taint"], "{findings:?}");
    assert_eq!(findings[0].item.as_deref(), Some("material"));
}

#[test]
fn secret_taint_true_negative() {
    // Length arithmetic and RNG construction (`seed_from_u64`) are not
    // secret sources.
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/secret_taint_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unbounded_loop_true_positive() {
    // Path carries a service marker, so the loop rules are in scope.
    let findings = lint(
        "crates/dumpio/src/service_fix.rs",
        include_str!("fixtures/unbounded_loop_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["unbounded-loop"], "{findings:?}");
    assert_eq!(findings[0].item.as_deref(), Some("poll_forever"));
}

#[test]
fn unbounded_loop_true_negative() {
    let findings = lint(
        "crates/dumpio/src/service_fix.rs",
        include_str!("fixtures/unbounded_loop_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn untimed_io_true_positive() {
    // A socket read with neither an Interrupted retry nor a read timeout
    // anywhere in the file yields both untimed-io findings.
    let findings = lint(
        "crates/dumpio/src/service_fix.rs",
        include_str!("fixtures/untimed_io_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["untimed-io", "untimed-io"], "{findings:?}");
}

#[test]
fn untimed_io_true_negative() {
    let findings = lint(
        "crates/dumpio/src/service_fix.rs",
        include_str!("fixtures/untimed_io_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lock_order_cycle_and_reacquisition_are_caught() {
    let findings = lint(
        "crates/dumpio/src/fix.rs",
        include_str!("fixtures/lock_order_positive.rs"),
    );
    let got = rules(&findings);
    assert_eq!(got, vec!["lock-order"; 3], "{findings:?}");
    let items: Vec<&str> = findings.iter().filter_map(|f| f.item.as_deref()).collect();
    assert!(items.contains(&"queue->jobs"), "{items:?}");
    assert!(items.contains(&"jobs->queue"), "{items:?}");
    assert!(items.contains(&"queue"), "reacquisition: {items:?}");
}

#[test]
fn lock_order_consistent_order_is_clean() {
    // Same order everywhere, plus a drop-before-acquire handoff.
    let findings = lint(
        "crates/dumpio/src/fix.rs",
        include_str!("fixtures/lock_order_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lock_order_cycle_spans_files() {
    // The acquisition-order graph is workspace-wide: each file alone is
    // consistent, but together they deadlock.
    let files = vec![
        SourceFile {
            path: "crates/a/src/lib.rs".to_string(),
            source: "pub fn f(s: &S) { let q = lock(&s.queue); let j = lock(&s.jobs); drop(j); drop(q); }\n".to_string(),
        },
        SourceFile {
            path: "crates/b/src/lib.rs".to_string(),
            source: "pub fn g(s: &S) { let j = lock(&s.jobs); let q = lock(&s.queue); drop(q); drop(j); }\n".to_string(),
        },
    ];
    let findings = lint_sources(&files, &LintConfig::default());
    let lock_findings: Vec<_> = findings.iter().filter(|f| f.rule == "lock-order").collect();
    assert_eq!(lock_findings.len(), 2, "{findings:?}");
    let files_seen: Vec<&str> = lock_findings.iter().map(|f| f.file.as_str()).collect();
    assert!(files_seen.contains(&"crates/a/src/lib.rs"), "{files_seen:?}");
    assert!(files_seen.contains(&"crates/b/src/lib.rs"), "{files_seen:?}");
}

// ---------------------------------------------------------------------------
// Interprocedural rule families (coldboot-lint v3)
// ---------------------------------------------------------------------------

#[test]
fn cross_function_secret_leak_is_caught() {
    // Key bytes flow out of a helper in one file and into a `println!` in
    // another; the binding is renamed (`material`), so neither the lexical
    // rules nor intra-procedural taint can see it.
    let findings = lint_files(&[
        (
            "crates/core/src/export.rs",
            include_str!("fixtures/xfn_secret_leak_helper.rs"),
        ),
        (
            "crates/core/src/report.rs",
            include_str!("fixtures/xfn_secret_leak_caller.rs"),
        ),
    ]);
    assert_eq!(rules(&findings), vec!["secret-taint"], "{findings:?}");
    assert_eq!(findings[0].file, "crates/core/src/report.rs");
    assert_eq!(findings[0].item.as_deref(), Some("material"));
}

#[test]
fn v2_lexical_heuristic_misses_the_cross_function_leak() {
    // Pin the v2 gap: the caller alone (helper unresolved) produces no
    // finding, because `export_material` is not lexically secret-named
    // and the argument carries no taint. Only the v3 summary of the
    // helper's body makes the leak visible.
    let findings = lint(
        "crates/core/src/report.rs",
        include_str!("fixtures/xfn_secret_leak_caller.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn helper_mediated_len_cast_true_positive() {
    // The narrowing `as u32` lives inside the helper; the length-derived
    // value is in the caller. Only the param-narrowed summary connects them.
    let findings = lint_files(&[
        (
            "crates/dumpio/src/words.rs",
            include_str!("fixtures/xfn_len_cast_helper.rs"),
        ),
        (
            "crates/dumpio/src/len_caller.rs",
            include_str!("fixtures/xfn_len_cast_caller_positive.rs"),
        ),
    ]);
    assert_eq!(rules(&findings), vec!["lossy-len-cast"], "{findings:?}");
    assert_eq!(findings[0].file, "crates/dumpio/src/len_caller.rs");
}

#[test]
fn helper_mediated_len_cast_true_negative() {
    // Same shape through the `try_from` helper: clean.
    let findings = lint_files(&[
        (
            "crates/dumpio/src/words.rs",
            include_str!("fixtures/xfn_len_cast_helper.rs"),
        ),
        (
            "crates/dumpio/src/len_caller.rs",
            include_str!("fixtures/xfn_len_cast_caller_negative.rs"),
        ),
    ]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_reachability_true_positive() {
    // Bin path: the plain `panic` rule is lib-only, so the only finding is
    // the interprocedural one at the entry's call site.
    let findings = lint(
        "crates/dumpio/src/bin/dumpd_fix.rs",
        include_str!("fixtures/panic_reach_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["panic-reachability"], "{findings:?}");
    assert_eq!(findings[0].item.as_deref(), Some("parse_len"));
}

#[test]
fn panic_reachability_true_negative() {
    // A justified allow annotation on the helper's unwrap keeps it out of
    // the reachable-panic set.
    let findings = lint(
        "crates/dumpio/src/bin/dumpd_fix.rs",
        include_str!("fixtures/panic_reach_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_reachability_through_mutual_recursion_terminates() {
    // Mutually recursive helpers form an SCC; the fixpoint must terminate
    // and still propagate the panic bit into the entry point.
    let findings = lint_files(&[
        (
            "crates/dumpio/src/bin/dumpd_fix.rs",
            concat!(
                "pub fn handle_connection(header: &[u8]) -> usize {\n",
                "    crate::walk::descend(header, 0)\n",
                "}\n",
            ),
        ),
        (
            "crates/dumpio/src/walk.rs",
            concat!(
                "pub fn descend(header: &[u8], depth: usize) -> usize {\n",
                "    if depth > 8 { return depth; }\n",
                "    ascend(header, depth + 1)\n",
                "}\n",
                "\n",
                "pub fn ascend(header: &[u8], depth: usize) -> usize {\n",
                "    let first = *header.first().unwrap() as usize;\n",
                "    first + descend(header, depth + 1)\n",
                "}\n",
            ),
        ),
    ]);
    let reach: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "panic-reachability")
        .collect();
    assert_eq!(reach.len(), 1, "{findings:?}");
    assert_eq!(reach[0].file, "crates/dumpio/src/bin/dumpd_fix.rs");
    assert_eq!(reach[0].item.as_deref(), Some("crate::walk::descend"));
}

#[test]
fn blocking_in_worker_true_positive() {
    let findings = lint(
        "crates/dumpio/src/service_fix.rs",
        include_str!("fixtures/blocking_worker_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["blocking-in-worker"], "{findings:?}");
    assert_eq!(findings[0].item.as_deref(), Some("read_frame"));
}

#[test]
fn blocking_in_worker_true_negative() {
    let findings = lint(
        "crates/dumpio/src/service_fix.rs",
        include_str!("fixtures/blocking_worker_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// v4 concurrency rules (thread-role graph)
// ---------------------------------------------------------------------------

#[test]
fn atomic_ordering_true_positive() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/atomic_ordering_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["atomic-ordering"], "{findings:?}");
    assert_eq!(findings[0].line, 9);
    assert_eq!(findings[0].item.as_deref(), Some("slot"));
}

#[test]
fn atomic_ordering_true_negative() {
    // Release publish, Relaxed RMW counter, and a literal-bool cancel
    // flag: all three allowed patterns in one file, zero findings.
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/atomic_ordering_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn blocking_in_event_loop_true_positive() {
    let findings = lint(
        "crates/cluster/src/fix.rs",
        include_str!("fixtures/blocking_event_loop_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["blocking-in-event-loop"], "{findings:?}");
    assert_eq!(findings[0].item.as_deref(), Some("poll_events"));
    // The message carries the spawn-site provenance the role BFS found.
    assert!(
        findings[0].message.contains("start_event_loop"),
        "{findings:?}"
    );
}

#[test]
fn blocking_in_event_loop_true_negative() {
    // A spin-on-flag event loop and a queue worker blocking on its own
    // queue: both clean — the worker role is allowed to block on recv.
    let findings = lint(
        "crates/cluster/src/fix.rs",
        include_str!("fixtures/blocking_event_loop_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn channel_deadlock_true_positive() {
    let findings = lint(
        "crates/dumpio/src/fix.rs",
        include_str!("fixtures/channel_deadlock_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["channel-deadlock"], "{findings:?}");
    // Reported at the send: that's the line that parks forever.
    assert_eq!(findings[0].line, 10);
    assert_eq!(findings[0].item.as_deref(), Some("rendezvous_with_self"));
}

#[test]
fn channel_deadlock_true_negative() {
    // The pipelined-producer shape done right: send on the spawned
    // thread, recv on the spawner, disconnect handled, handle joined.
    let findings = lint(
        "crates/dumpio/src/fix.rs",
        include_str!("fixtures/channel_deadlock_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unwrapped_cross_thread_send_is_flagged() {
    // The recycle-loop shutdown race: the receiver thread exiting first
    // turns a normal disconnect into a sender panic.
    let findings = lint(
        "crates/dumpio/src/fix.rs",
        concat!(
            "use std::sync::mpsc;\n",
            "use std::thread;\n",
            "\n",
            "pub fn feed_pipeline() -> u64 {\n",
            "    let (tx, rx) = mpsc::sync_channel(4);\n",
            "    let producer = thread::spawn(move || {\n",
            "        tx.send(7u64).unwrap();\n",
            "    });\n",
            "    let got = rx.recv().unwrap_or(0);\n",
            "    let _ = producer.join();\n",
            "    got\n",
            "}\n",
        ),
    );
    // The raw unwrap also trips the panic rule; this test pins the
    // concurrency-specific finding.
    let deadlock: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "channel-deadlock")
        .collect();
    assert_eq!(deadlock.len(), 1, "{findings:?}");
    assert_eq!(deadlock[0].line, 7);
    assert!(deadlock[0].message.contains("unwrap"), "{findings:?}");
}

#[test]
fn join_leak_true_positive() {
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/join_leak_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["join-leak", "join-leak"], "{findings:?}");
    // Statement-position spawn, then the never-used binding.
    assert_eq!(findings[0].line, 9);
    assert_eq!(findings[1].line, 13);
}

#[test]
fn join_leak_true_negative() {
    // Joined, explicitly detached with `let _ =`, and handle-escapes (the
    // caller owns the join decision): all clean.
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/join_leak_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn v3_summary_pass_misses_the_deep_event_loop_sleep() {
    // The interprocedural pin: the sleep is two calls below the spawn
    // site. v4's role BFS connects them…
    let findings = lint(
        "crates/cluster/src/fix.rs",
        include_str!("fixtures/xfn_event_loop_deep_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["blocking-in-event-loop"], "{findings:?}");
    assert_eq!(findings[0].item.as_deref(), Some("drain_backlog"));
    assert!(
        findings[0].message.contains("start_event_loop"),
        "{findings:?}"
    );
    // …while the byte-identical call chain without the spawn is clean.
    // No per-function (v3) pass could flag the first file and not the
    // second: the sleeping function is the same in both; only the role
    // graph distinguishes them.
    let clean = lint(
        "crates/cluster/src/fix.rs",
        include_str!("fixtures/xfn_event_loop_deep_negative.rs"),
    );
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn zeroize_coverage_true_positive() {
    let findings = lint(
        "crates/memenc/src/fix.rs",
        include_str!("fixtures/zeroize_coverage_positive.rs"),
    );
    assert_eq!(rules(&findings), vec!["zeroize-coverage"], "{findings:?}");
    assert_eq!(findings[0].item.as_deref(), Some("Stash"));
}

#[test]
fn zeroize_coverage_true_negative() {
    let findings = lint(
        "crates/memenc/src/fix.rs",
        include_str!("fixtures/zeroize_coverage_negative.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// Stale-allow detection
// ---------------------------------------------------------------------------

#[test]
fn stale_allow_entry_is_reported() {
    use coldboot_analyzer::{lint_sources_with, LintOptions};
    let config = LintConfig::parse(concat!(
        "[[allow]]\n",
        "rule = \"secret-debug\"\n",
        "path = \"crates/nowhere/\"\n",
        "reason = \"left over from a deleted module\"\n",
    ))
    .expect("valid allowlist");
    let files = vec![SourceFile {
        path: "crates/core/src/fix.rs".to_string(),
        source: "pub fn fine() {}\n".to_string(),
    }];
    let opts = LintOptions {
        threads: 1,
        check_stale_allows: true,
        ..LintOptions::default()
    };
    let run = lint_sources_with(&files, &config, &opts);
    assert_eq!(rules(&run.findings), vec!["stale-allow"], "{run:?}");
    assert_eq!(run.findings[0].file, "lint.toml");
    assert!(run.findings[0].line > 0, "allow entry line must be recorded");
}

#[test]
fn matching_allow_entry_is_not_stale() {
    use coldboot_analyzer::{lint_sources_with, LintOptions};
    let config = LintConfig::parse(concat!(
        "[[allow]]\n",
        "rule = \"secret-debug\"\n",
        "path = \"crates/core/src/fix.rs\"\n",
        "item = \"Recovered\"\n",
        "reason = \"attacker-side output struct\"\n",
    ))
    .expect("valid allowlist");
    let files = vec![SourceFile {
        path: "crates/core/src/fix.rs".to_string(),
        source: include_str!("fixtures/secret_debug_positive.rs").to_string(),
    }];
    let opts = LintOptions {
        threads: 1,
        check_stale_allows: true,
        ..LintOptions::default()
    };
    let run = lint_sources_with(&files, &config, &opts);
    assert!(run.findings.is_empty(), "{run:?}");
}

// ---------------------------------------------------------------------------
// Baseline suppression
// ---------------------------------------------------------------------------

#[test]
fn baseline_suppresses_by_rule_file_item_not_line() {
    use coldboot_analyzer::Baseline;
    let findings = lint(
        "crates/core/src/fix.rs",
        include_str!("fixtures/lossy_len_cast_positive.rs"),
    );
    assert_eq!(findings.len(), 1);
    let baseline = Baseline::parse(&Baseline::render(&findings)).expect("round-trip");
    // Same finding at a *different* line (unrelated edit moved it): still
    // covered, because baselines match on (rule, file, item).
    let mut moved = findings[0].clone();
    moved.line += 40;
    assert!(baseline.covers(&moved));
    // A different item in the same file is not covered.
    let mut other = findings[0].clone();
    other.item = Some("other_count".to_string());
    assert!(!baseline.covers(&other));
}
