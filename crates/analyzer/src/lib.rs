//! `coldboot-analyzer` — secret-hygiene static analysis for the cold-boot
//! reproduction workspace.
//!
//! The paper's whole premise is that key material (scrambler keystreams,
//! AES round-key schedules, XTS master keys) leaks when it touches memory
//! in recoverable form. A reproduction that `Debug`-prints a round key,
//! compares key bytes with early-exit `==`, or leaves master keys
//! un-zeroized on drop undermines its own threat model. This crate
//! enforces those properties mechanically: a hand-rolled lexer feeds a
//! rule engine that walks every `.rs` file in the workspace, and
//! `tests/lint_gate.rs` at the workspace root turns the result into a CI
//! gate.
//!
//! Token-level rules: `secret-print`, `secret-debug`, `zeroize-drop`,
//! `const-time`, `forbid-unsafe`, `truncating-cast`, `panic`, plus the
//! `suppression` meta-rule policing `// lint:allow(rule): reason`
//! annotations. Syntax-aware dataflow rules (on the hand-rolled AST in
//! [`ast`]): `lossy-len-cast`, `unbounded-loop`, `untimed-io`,
//! `lock-order`, `secret-taint`, plus the `stale-allow` meta-rule over
//! `lint.toml`. Concurrency rules on the thread-role graph ([`threads`]):
//! `atomic-ordering`, `blocking-in-event-loop`, `channel-deadlock`,
//! `join-leak`. See DESIGN.md ("Static analysis") for each rule's paper
//! rationale.
//!
//! The per-file analysis fans out over a work-stealing thread pool and is
//! memoized in a content-hash cache (`target/lint-cache`), so warm runs
//! re-analyze only changed files. Output renders as text, JSON, or SARIF
//! 2.1.0 ([`sarif`]).
//!
//! The crate is deliberately std-only so the gate runs in offline build
//! environments.

#![forbid(unsafe_code)]

pub mod ast;
pub mod cache;
mod callgraph;
mod concurrency;
pub mod config;
mod dataflow;
pub mod diag;
pub mod engine;
pub mod lexer;
mod locks;
pub mod sarif;
pub mod secrets;
mod summaries;
mod threads;
pub mod walk;

pub use cache::LintCache;
pub use config::LintConfig;
pub use diag::{
    render_json, render_text, rule_explanation, Baseline, Finding, RULE_DESCRIPTIONS, RULE_IDS,
};
pub use engine::{
    concurrency_findings, lint_sources, lint_sources_with, summarize_sources, LintOptions,
    LintRun, RunStats, SourceFile, SummaryRun,
};
pub use sarif::render_sarif;
pub use summaries::SummaryStats;

use std::io;
use std::path::Path;

/// Lints every `.rs` file under `root` against `config` with default
/// options. This is the stable simple entry point; [`lint_workspace_with`]
/// exposes threads, caching, and stale-allow checking.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> io::Result<Vec<Finding>> {
    Ok(lint_workspace_with(root, config, &LintOptions::default())?.findings)
}

/// Lints every `.rs` file under `root` against `config` under `opts`.
/// This is the entry point both the `coldboot-lint` binary and the
/// workspace lint gate use.
pub fn lint_workspace_with(
    root: &Path,
    config: &LintConfig,
    opts: &LintOptions,
) -> io::Result<LintRun> {
    let sources = walk::collect_sources(root)?;
    Ok(engine::lint_sources_with(&sources, config, opts))
}

/// Loads `lint.toml` from `root` if present; a missing file is an empty
/// allowlist, a malformed one is an error.
pub fn load_config(root: &Path) -> Result<LintConfig, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => LintConfig::parse(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(LintConfig::default()),
        Err(e) => Err(format!("failed to read {}: {e}", path.display())),
    }
}
