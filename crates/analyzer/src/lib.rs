//! `coldboot-analyzer` — secret-hygiene static analysis for the cold-boot
//! reproduction workspace.
//!
//! The paper's whole premise is that key material (scrambler keystreams,
//! AES round-key schedules, XTS master keys) leaks when it touches memory
//! in recoverable form. A reproduction that `Debug`-prints a round key,
//! compares key bytes with early-exit `==`, or leaves master keys
//! un-zeroized on drop undermines its own threat model. This crate
//! enforces those properties mechanically: a hand-rolled lexer feeds a
//! rule engine that walks every `.rs` file in the workspace, and
//! `tests/lint_gate.rs` at the workspace root turns the result into a CI
//! gate.
//!
//! Rules: `secret-print`, `secret-debug`, `zeroize-drop`, `const-time`,
//! `forbid-unsafe`, `truncating-cast`, `panic`, plus the `suppression`
//! meta-rule policing `// lint:allow(rule): reason` annotations. See
//! DESIGN.md ("Static analysis") for each rule's paper rationale.
//!
//! The crate is deliberately std-only so the gate runs in offline build
//! environments.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod secrets;
pub mod walk;

pub use config::LintConfig;
pub use diag::{render_json, render_text, Finding, RULE_IDS};
pub use engine::{lint_sources, SourceFile};

use std::io;
use std::path::Path;

/// Lints every `.rs` file under `root` against `config`. This is the
/// entry point both the `coldboot-lint` binary and the workspace lint
/// gate use.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> io::Result<Vec<Finding>> {
    let sources = walk::collect_sources(root)?;
    Ok(engine::lint_sources(&sources, config))
}

/// Loads `lint.toml` from `root` if present; a missing file is an empty
/// allowlist, a malformed one is an error.
pub fn load_config(root: &Path) -> Result<LintConfig, String> {
    let path = root.join("lint.toml");
    match std::fs::read_to_string(&path) {
        Ok(text) => LintConfig::parse(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(LintConfig::default()),
        Err(e) => Err(format!("failed to read {}: {e}", path.display())),
    }
}
