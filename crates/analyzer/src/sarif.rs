//! Minimal SARIF 2.1.0 rendering for CI annotation.
//!
//! Emits one run with the full rule table (so viewers can show rule help
//! text even for rules with no results this run) and one `result` per
//! finding. Only the subset of the schema that GitHub-style SARIF
//! ingestion actually reads is produced: `ruleId`, `level`, `message`,
//! and a physical location with an absolute-free, workspace-relative
//! URI.

use crate::diag::{Finding, RULE_DESCRIPTIONS};

const SARIF_VERSION: &str = "2.1.0";
const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a SARIF 2.1.0 document.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"$schema\":\"{SARIF_SCHEMA}\",\"version\":\"{SARIF_VERSION}\",\"runs\":[{{"
    ));
    out.push_str("\"tool\":{\"driver\":{\"name\":\"coldboot-lint\",");
    out.push_str("\"informationUri\":\"https://example.invalid/coldboot-lint\",\"rules\":[");
    for (i, (id, desc)) in RULE_DESCRIPTIONS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            esc(id),
            esc(desc)
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            esc(f.rule),
            esc(&f.message),
            esc(&f.file),
            f.line.max(1)
        ));
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_shape() {
        let doc = render_sarif(&[Finding {
            file: "crates/x/src/a.rs".to_string(),
            line: 12,
            rule: "lossy-len-cast",
            message: "say \"why\"".to_string(),
            item: None,
        }]);
        assert!(doc.contains("\"version\":\"2.1.0\""));
        assert!(doc.contains("\"ruleId\":\"lossy-len-cast\""));
        assert!(doc.contains("\"startLine\":12"));
        assert!(doc.contains("say \\\"why\\\""));
        // Every rule appears in the driver table.
        for (id, _) in RULE_DESCRIPTIONS {
            assert!(doc.contains(&format!("\"id\":\"{id}\"")), "{id}");
        }
    }

    #[test]
    fn empty_results_still_valid_shape() {
        let doc = render_sarif(&[]);
        assert!(doc.contains("\"results\":[]"));
        assert!(doc.ends_with("]}]}"));
    }
}
