//! Findings and their text/JSON renderings.

use std::fmt;

/// The stable identifiers of every rule the engine can fire.
pub const RULE_IDS: &[&str] = &[
    "secret-print",
    "secret-debug",
    "zeroize-drop",
    "const-time",
    "forbid-unsafe",
    "truncating-cast",
    "panic",
    "suppression",
];

/// One diagnostic produced by the rule engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule identifier from [`RULE_IDS`].
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// The item (struct, identifier, macro) the finding is about, used for
    /// `item`-scoped allowlist entries.
    pub item: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON document:
/// `{"findings":[{"file":..,"line":..,"rule":..,"message":..,"item":..}],"count":N}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
        if let Some(item) = &f.item {
            out.push_str(&format!(",\"item\":\"{}\"", json_escape(item)));
        }
        out.push('}');
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

/// Renders findings in rustc style, one per line, plus a trailing summary.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("coldboot-lint: no findings\n");
    } else {
        out.push_str(&format!(
            "coldboot-lint: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            file: "crates/crypto/src/xts.rs".to_string(),
            line: 12,
            rule: "panic",
            message: "call to `unwrap()` in library code".to_string(),
            item: Some("unwrap".to_string()),
        }
    }

    #[test]
    fn text_is_rustc_style() {
        assert_eq!(
            sample().to_string(),
            "crates/crypto/src/xts.rs:12: panic: call to `unwrap()` in library code"
        );
    }

    #[test]
    fn json_round_trip_shape() {
        let doc = render_json(&[sample()]);
        assert!(doc.starts_with("{\"findings\":["));
        assert!(doc.contains("\"line\":12"));
        assert!(doc.contains("\"rule\":\"panic\""));
        assert!(doc.ends_with("\"count\":1}"));
    }

    #[test]
    fn json_escaping() {
        let doc = render_json(&[Finding {
            file: "a\"b".to_string(),
            line: 1,
            rule: "panic",
            message: "tab\there".to_string(),
            item: None,
        }]);
        assert!(doc.contains("a\\\"b"));
        assert!(doc.contains("tab\\there"));
    }

    #[test]
    fn empty_render() {
        assert_eq!(render_json(&[]), "{\"findings\":[],\"count\":0}");
        assert!(render_text(&[]).contains("no findings"));
    }
}
