//! Findings, their text/JSON renderings, and baseline files.

use std::fmt;

/// The stable identifiers of every rule the engine can fire.
pub const RULE_IDS: &[&str] = &[
    "secret-print",
    "secret-debug",
    "zeroize-drop",
    "const-time",
    "forbid-unsafe",
    "truncating-cast",
    "panic",
    "suppression",
    "lossy-len-cast",
    "unbounded-loop",
    "untimed-io",
    "lock-order",
    "secret-taint",
    "zeroize-coverage",
    "panic-reachability",
    "blocking-in-worker",
    "atomic-ordering",
    "blocking-in-event-loop",
    "channel-deadlock",
    "join-leak",
    "stale-allow",
];

/// One-line description per rule id, used by `--list-rules` and the SARIF
/// rule metadata. Kept in [`RULE_IDS`] order.
pub const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    ("secret-print", "secret identifiers must not reach print/format macros"),
    ("secret-debug", "secret-bearing structs must not derive Debug"),
    ("zeroize-drop", "secret-bearing structs in victim crates need a zeroizing Drop"),
    ("const-time", "no early-exit comparisons or branches on secret data"),
    ("forbid-unsafe", "every crate root keeps #![forbid(unsafe_code)]"),
    ("truncating-cast", "no narrowing casts on DRAM address arithmetic"),
    ("panic", "no unwrap/expect/panic! in library code"),
    ("suppression", "lint:allow annotations must name known rules and give a reason"),
    ("lossy-len-cast", "length-derived values must not be narrowed with `as`; use try_from"),
    ("unbounded-loop", "service/scan loops must have an exit or consult a cancel/deadline control"),
    ("untimed-io", "service socket reads need a read timeout and an Interrupted retry"),
    ("lock-order", "Mutex acquisition order must be acyclic and never reentrant"),
    ("secret-taint", "values derived from secret fields must not reach format/log sinks"),
    ("zeroize-coverage", "structs holding secret-tainted data need a zeroizing Drop"),
    ("panic-reachability", "service worker/connection paths must not reach a panic"),
    ("blocking-in-worker", "queue workers must not perform blocking socket IO"),
    ("atomic-ordering", "Relaxed stores that publish to another thread role need Release/Acquire"),
    ("blocking-in-event-loop", "event-loop and connection-handler threads must not sleep or block"),
    ("channel-deadlock", "rendezvous send+recv on one thread, or unwrapped cross-thread sends"),
    ("join-leak", "spawned JoinHandles must be joined, kept, or explicitly detached"),
    ("stale-allow", "lint.toml allow entries must match at least one raw finding"),
];

/// Per-rule rationale and fix example for the CLI's `--explain`. Kept in
/// [`RULE_IDS`] order; the doc test pins one entry per rule.
pub const RULE_EXPLANATIONS: &[(&str, &str, &str)] = &[
    (
        "secret-print",
        "The paper recovers keys precisely because they were observable; formatting a \
         secret writes it to logs, terminals, and core dumps where it outlives the process.",
        "println!(\"key = {master_key:02x?}\")  ->  log only derived facts: \
         println!(\"key loaded, {} bytes\", master_key.len())",
    ),
    (
        "secret-debug",
        "A derived Debug impl walks every field, so any {:?} of a containing value \
         dumps the key bytes. Secret-bearing structs need a redacting manual impl.",
        "#[derive(Debug)] struct Keys { words: Vec<u32> }  ->  impl fmt::Debug for Keys \
         { /* print \"Keys(<redacted>)\" */ }",
    ),
    (
        "zeroize-drop",
        "Cold-boot attacks read memory after software stops running; key bytes left in \
         freed allocations are exactly the remanence the paper exploits (sections 5-6).",
        "struct Keys { words: Vec<u32> }  ->  impl Drop for Keys { fn drop(&mut self) \
         { for w in self.words.iter_mut() { *w = 0; } } }",
    ),
    (
        "const-time",
        "Early-exit comparisons and secret-dependent branches leak how many bytes \
         matched through timing, turning a key check into an oracle.",
        "if guess == master_key { ... }  ->  use coldboot_crypto::ct::eq(guess, \
         &master_key) and branch on the bool",
    ),
    (
        "forbid-unsafe",
        "The workspace proves its claims with safe Rust; one unsafe block invalidates \
         the memory-safety argument the analysis depends on.",
        "crate root missing the attribute  ->  add #![forbid(unsafe_code)] at the top \
         of src/lib.rs",
    ),
    (
        "truncating-cast",
        "DRAM physical addresses exceed 32 bits; `as u32` on address arithmetic \
         silently wraps and scans the wrong row (the bug class behind mapping.rs).",
        "let row = addr as u32;  ->  let row = u32::try_from(addr)?;",
    ),
    (
        "panic",
        "A panic in library code aborts the scan/service path that called it; errors \
         must flow to the caller who can retry or report.",
        "header.parse().unwrap()  ->  header.parse().map_err(|e| ScanError::Header(e))?",
    ),
    (
        "suppression",
        "lint:allow without a reason (or naming an unknown rule) silences nothing and \
         rots; every suppression must say why it is sound.",
        "// lint:allow(panic)  ->  // lint:allow(panic): length checked two lines above",
    ),
    (
        "lossy-len-cast",
        "Record and buffer lengths exceed u32 on large dumps; `as u32` truncates \
         silently and corrupts the CBDF framing (the PR 4 writer bug).",
        "data.len() as u32  ->  u32::try_from(data.len())?",
    ),
    (
        "unbounded-loop",
        "Service and scan loops that never consult cancel/deadline/shutdown keep a \
         worker pinned after the operator asked it to stop.",
        "loop { step(); }  ->  loop { if ctrl.cancelled() { break; } step(); }",
    ),
    (
        "untimed-io",
        "A blocking socket read with no timeout lets one stalled peer wedge the dump \
         service; an EINTR drop loses the connection on any timer signal.",
        "stream.read(&mut buf)?  ->  stream.set_read_timeout(Some(t))? at accept, and \
         retry the read on ErrorKind::Interrupted",
    ),
    (
        "lock-order",
        "Two threads acquiring the same Mutexes in opposite orders deadlock the \
         service under load; acquisition order must be a DAG.",
        "lock(a) then lock(b) in one path, lock(b) then lock(a) in another  ->  pick \
         one global order and take both locks in it",
    ),
    (
        "secret-taint",
        "Renaming a key does not launder it: a value copied out of a secret field (or \
         returned by a key-deriving helper, across function and file boundaries) is \
         still key material when it reaches a format/log sink.",
        "let material = self.master_key.clone(); println!(\"{material:02x?}\");  ->  \
         drop the print, or log material.len() only",
    ),
    (
        "zeroize-coverage",
        "Secret taint flows into ordinary-looking structs (staging buffers, session \
         state); if their Drop does not zeroize, key bytes survive free() and remain \
         recoverable by the paper's attack.",
        "struct Stash { buf: Vec<u8> } filled from a key  ->  impl Drop for Stash \
         { fn drop(&mut self) { self.buf.fill(0); } }",
    ),
    (
        "panic-reachability",
        "dumpd workers and connection handlers run detached; a panic anywhere in \
         their call graph kills the worker silently and the queue stalls.",
        "worker calls parse_header() which calls .unwrap()  ->  return Result from \
         the helper and have the worker log-and-continue",
    ),
    (
        "blocking-in-worker",
        "Queue workers own CPU-bound jobs; blocking socket IO inside one stalls every \
         queued job behind a slow peer. IO belongs in the connection path.",
        "worker_loop reads from a TcpStream  ->  have the accept/connection path do \
         the read and enqueue parsed jobs only",
    ),
    (
        "atomic-ordering",
        "A Relaxed store gives readers on other threads no happens-before edge to the \
         data written before it, so a flag/cursor handoff published with Relaxed can be \
         observed before the writes it guards. Monotonic fetch_add counters and \
         literal-bool cancel flags carry no payload and stay clean; everything else \
         needs a Release store paired with Acquire loads (or a justified allow).",
        "shutdown.store(true, Ordering::Relaxed)  ->  shutdown.store(true, \
         Ordering::Release) with shutdown.load(Ordering::Acquire) on the reader side",
    ),
    (
        "blocking-in-event-loop",
        "The cluster front end multiplexes every connection onto one poll thread; a \
         thread::sleep, blocking socket call, or unbounded recv reachable from that \
         thread (at any call depth) stops polling all of them at once. Per-connection \
         handler threads likewise must not sleep or drain unbounded queues.",
        "if !active { thread::sleep(IDLE_SLEEP); }  ->  poll with a timeout, or sleep a \
         capped backoff that resets the moment any connection makes progress",
    ),
    (
        "channel-deadlock",
        "sync_channel(0) is a rendezvous: send blocks until recv arrives, so both ends \
         reachable on the same thread self-deadlock. And a send whose receiver lives on \
         another thread panics on unwrap when that thread exits first (the recycle-loop \
         shutdown race).",
        "tx.send(x).unwrap(); rx.recv()  ->  move one endpoint to the spawned thread, \
         and write `let _ = tx.send(x)` where receiver shutdown is a normal exit",
    ),
    (
        "join-leak",
        "Dropping a JoinHandle detaches the thread silently: its panic is lost and \
         shutdown cannot wait for it. Keeping the handle (join, store, return) or \
         writing `let _ =` makes the detach an audited decision.",
        "thread::spawn(|| handle_connection(s));  ->  let _ = thread::spawn(|| \
         handle_connection(s));  // or keep the handle and join on drain",
    ),
    (
        "stale-allow",
        "An allow entry matching no finding is dead config: either the debt was fixed \
         (delete it) or the path/rule is a typo (fix it).",
        "remove the stale [[allow]] entry from lint.toml, or correct its path",
    ),
];

/// Looks up a rule's rationale and fix example for `--explain`.
pub fn rule_explanation(rule: &str) -> Option<(&'static str, &'static str)> {
    RULE_EXPLANATIONS
        .iter()
        .find(|(id, _, _)| *id == rule)
        .map(|(_, why, fix)| (*why, *fix))
}

/// Looks up a rule description.
pub fn rule_description(rule: &str) -> &'static str {
    RULE_DESCRIPTIONS
        .iter()
        .find(|(id, _)| *id == rule)
        .map(|(_, d)| *d)
        .unwrap_or("")
}

/// Interns a rule name against [`RULE_IDS`] (the `&'static str` in
/// [`Finding`] requires it); `None` for unknown rules.
pub fn intern_rule(rule: &str) -> Option<&'static str> {
    RULE_IDS.iter().find(|r| **r == rule).copied()
}

/// One diagnostic produced by the rule engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule identifier from [`RULE_IDS`].
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// The item (struct, identifier, macro) the finding is about, used for
    /// `item`-scoped allowlist entries.
    pub item: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON document:
/// `{"findings":[{"file":..,"line":..,"rule":..,"message":..,"item":..}],"count":N}`.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
        if let Some(item) = &f.item {
            out.push_str(&format!(",\"item\":\"{}\"", json_escape(item)));
        }
        out.push('}');
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

/// Renders findings in rustc style, one per line, plus a trailing summary.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("coldboot-lint: no findings\n");
    } else {
        out.push_str(&format!(
            "coldboot-lint: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// A baseline: known findings to suppress, keyed by `(rule, file, item)`.
/// The line number is deliberately *not* part of the key — baselined debt
/// should not resurface every time unrelated edits shift a file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    entries: Vec<(String, String, Option<String>)>,
}

impl Baseline {
    /// Parses the `rule<TAB>file<TAB>item` line format written by
    /// [`Baseline::render`]. `-` means "no item"; `#` starts a comment.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(rule), Some(file), Some(item)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!(
                    "baseline:{}: expected `rule<TAB>file<TAB>item`",
                    idx + 1
                ));
            };
            entries.push((
                rule.to_string(),
                file.to_string(),
                if item == "-" {
                    None
                } else {
                    Some(item.to_string())
                },
            ));
        }
        Ok(Self { entries })
    }

    /// Renders findings as a baseline document.
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# coldboot-lint baseline: one `rule<TAB>file<TAB>item` per line (`-` = no item)\n",
        );
        let mut lines: Vec<String> = findings
            .iter()
            .map(|f| {
                format!(
                    "{}\t{}\t{}",
                    f.rule,
                    f.file,
                    f.item.as_deref().unwrap_or("-")
                )
            })
            .collect();
        lines.sort();
        lines.dedup();
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }

    /// True when the finding matches a baseline entry exactly.
    pub fn covers(&self, f: &Finding) -> bool {
        self.entries
            .iter()
            .any(|(rule, file, item)| rule == f.rule && file == &f.file && item == &f.item)
    }

    /// Number of entries (for CLI reporting).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the baseline has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            file: "crates/crypto/src/xts.rs".to_string(),
            line: 12,
            rule: "panic",
            message: "call to `unwrap()` in library code".to_string(),
            item: Some("unwrap".to_string()),
        }
    }

    #[test]
    fn text_is_rustc_style() {
        assert_eq!(
            sample().to_string(),
            "crates/crypto/src/xts.rs:12: panic: call to `unwrap()` in library code"
        );
    }

    #[test]
    fn json_round_trip_shape() {
        let doc = render_json(&[sample()]);
        assert!(doc.starts_with("{\"findings\":["));
        assert!(doc.contains("\"line\":12"));
        assert!(doc.contains("\"rule\":\"panic\""));
        assert!(doc.ends_with("\"count\":1}"));
    }

    #[test]
    fn json_escaping() {
        let doc = render_json(&[Finding {
            file: "a\"b".to_string(),
            line: 1,
            rule: "panic",
            message: "tab\there".to_string(),
            item: None,
        }]);
        assert!(doc.contains("a\\\"b"));
        assert!(doc.contains("tab\\there"));
    }

    #[test]
    fn empty_render() {
        assert_eq!(render_json(&[]), "{\"findings\":[],\"count\":0}");
        assert!(render_text(&[]).contains("no findings"));
    }

    #[test]
    fn every_rule_has_a_description() {
        for rule in RULE_IDS {
            assert!(!rule_description(rule).is_empty(), "missing description: {rule}");
        }
        assert_eq!(RULE_IDS.len(), RULE_DESCRIPTIONS.len());
    }

    #[test]
    fn every_rule_has_an_explanation() {
        assert_eq!(RULE_IDS.len(), RULE_EXPLANATIONS.len());
        for (i, rule) in RULE_IDS.iter().enumerate() {
            let (id, why, fix) = RULE_EXPLANATIONS[i];
            assert_eq!(id, *rule, "RULE_EXPLANATIONS out of order at {rule}");
            assert!(!why.is_empty() && !fix.is_empty(), "empty explanation: {rule}");
            assert!(rule_explanation(rule).is_some());
        }
        assert!(rule_explanation("no-such-rule").is_none());
    }

    #[test]
    fn baseline_round_trip() {
        let text = Baseline::render(&[sample()]);
        let bl = Baseline::parse(&text).unwrap();
        assert_eq!(bl.len(), 1);
        assert!(bl.covers(&sample()));
        let mut other = sample();
        other.line = 999; // line changes do not break the baseline
        assert!(bl.covers(&other));
        other.item = None;
        assert!(!bl.covers(&other));
    }

    #[test]
    fn baseline_rejects_malformed_lines() {
        assert!(Baseline::parse("just-a-rule\n").is_err());
        assert!(Baseline::parse("# comment only\n\n").unwrap().is_empty());
    }
}
