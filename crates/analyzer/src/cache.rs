//! Content-hash analysis cache under `target/lint-cache`, with
//! dependency-aware check records.
//!
//! Two record families per source file, both named by the FNV-1a hash of
//! the workspace path:
//!
//! * `.sum` — the file's per-function summary facts (the phase-one
//!   extraction). Valid while the FNV of the file *contents* and the
//!   engine's rule fingerprint match: extraction depends on nothing else.
//! * `.rec` — the file's check-phase result (raw findings, struct facts,
//!   drop impls, lock edges, suppressions — everything the workspace
//!   passes need, nothing allowlist-dependent). Its key additionally
//!   folds in a *dependency hash*: the combined summary hashes of every
//!   callee the file resolves to. Editing a callee changes its summary,
//!   which changes dependent callers' keys — so exactly the dependent
//!   callers re-check, while an unchanged tree still re-analyzes zero
//!   files.
//!
//! The format is a versioned, tab-separated text file. Any anomaly —
//! unknown version, hash mismatch, a rule id the current binary does not
//! know, a short line — makes `load` return `None` and the engine falls
//! back to a fresh analysis, so a corrupt cache can never change
//! findings, only cost time.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{intern_rule, Finding, RULE_IDS};
use crate::engine::{FileRecord, StructFact, Suppression};
use crate::locks::LockEdge;
use crate::summaries::{parse_facts, serialize_fact, FnFact};

/// Bump when the record format or rule semantics change in a way the
/// rule-id fingerprint does not capture. v3: spawn/channel/atomic facts
/// (`S`/`H`/`O`/`A` lines) plus the widened `N`/`C` formats for the
/// concurrency pass.
const CACHE_VERSION: u32 = 3;

/// 64-bit FNV-1a.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of the active rule set: any rule added, removed, or
/// renamed invalidates every record.
fn rules_fingerprint() -> u64 {
    let mut joined = format!("v{CACHE_VERSION};");
    for r in RULE_IDS {
        joined.push_str(r);
        joined.push(',');
    }
    fnv64(joined.as_bytes())
}

/// A directory of per-file analysis records.
#[derive(Debug)]
pub struct LintCache {
    dir: PathBuf,
}

impl LintCache {
    /// Opens (creating if needed) a cache directory.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    fn record_path(&self, path: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.rec", fnv64(path.as_bytes())))
    }

    fn summary_path(&self, path: &str) -> PathBuf {
        self.dir.join(format!("{:016x}.sum", fnv64(path.as_bytes())))
    }

    fn content_hash(path: &str, source: &str) -> u64 {
        let mut h = fnv64(path.as_bytes());
        h ^= fnv64(source.as_bytes()).rotate_left(1);
        h ^= rules_fingerprint().rotate_left(2);
        h
    }

    /// Check-record key: file contents plus the combined summary hash of
    /// every callee the file's calls resolve to. A callee edit changes
    /// `deps`, invalidating exactly the dependent callers.
    fn check_hash(path: &str, source: &str, deps: u64) -> u64 {
        Self::content_hash(path, source) ^ deps.rotate_left(3)
    }

    /// Loads the check record for `path` if one exists and is still
    /// valid for `source` + callee summaries under the current rule set.
    pub(crate) fn load(&self, path: &str, source: &str, deps: u64) -> Option<FileRecord> {
        let text = fs::read_to_string(self.record_path(path)).ok()?;
        let mut lines = text.lines();
        let header = lines.next()?;
        let mut parts = header.split('\t');
        if parts.next() != Some("coldboot-lint-cache") {
            return None;
        }
        let key: u64 = u64::from_str_radix(parts.next()?, 16).ok()?;
        if key != Self::check_hash(path, source, deps) {
            return None;
        }
        parse_record(path, lines)
    }

    /// Loads the summary facts for `path` if still valid for `source`.
    /// Summary records depend only on the file's own contents.
    pub(crate) fn load_summary(&self, path: &str, source: &str) -> Option<Vec<FnFact>> {
        let text = fs::read_to_string(self.summary_path(path)).ok()?;
        let mut lines = text.lines();
        let header = lines.next()?;
        let mut parts = header.split('\t');
        if parts.next() != Some("coldboot-lint-summaries") {
            return None;
        }
        let key: u64 = u64::from_str_radix(parts.next()?, 16).ok()?;
        if key != Self::content_hash(path, source) {
            return None;
        }
        parse_facts(lines, unesc)
    }

    /// Persists the extraction facts for `path`. Best-effort, like
    /// [`LintCache::store`].
    pub(crate) fn store_summary(&self, path: &str, source: &str, facts: &[FnFact]) {
        let mut out = format!(
            "coldboot-lint-summaries\t{:016x}\n",
            Self::content_hash(path, source)
        );
        for fact in facts {
            serialize_fact(fact, &mut out, esc);
        }
        let _ = fs::write(self.summary_path(path), out);
    }

    /// Persists `record` for `path`. Best-effort: IO errors leave the
    /// cache cold but never fail the lint run.
    pub(crate) fn store(&self, path: &str, source: &str, deps: u64, record: &FileRecord) {
        let mut out = format!(
            "coldboot-lint-cache\t{:016x}\n",
            Self::check_hash(path, source, deps)
        );
        for f in &record.findings {
            out.push_str(&format!(
                "F\t{}\t{}\t{}\t{}\n",
                f.line,
                f.rule,
                esc(f.item.as_deref().unwrap_or("-")),
                esc(&f.message)
            ));
        }
        for s in &record.structs {
            out.push_str(&format!(
                "S\t{}\t{}\t{}\t{}\t{}\n",
                s.line,
                // lint:allow(secret-print): serializes the struct-fact *flag*, not key material
                u8::from(s.secret_bearing),
                u8::from(s.in_test),
                esc(&s.container_fields.join(",")),
                esc(&s.name)
            ));
        }
        for d in &record.drop_impls {
            out.push_str(&format!("D\t{}\n", esc(d)));
        }
        for (target, zeroizes) in &record.drop_zeroizes {
            out.push_str(&format!("Z\t{}\t{}\n", u8::from(*zeroizes), esc(target)));
        }
        for e in &record.lock_edges {
            out.push_str(&format!(
                "L\t{}\t{}\t{}\t{}\n",
                e.line,
                esc(&e.held),
                esc(&e.acquired),
                esc(&e.fn_name)
            ));
        }
        for s in &record.suppressions {
            out.push_str(&format!(
                "P\t{}\t{}\t{}\t{}\n",
                s.line,
                s.end_line,
                u8::from(s.has_reason),
                esc(&s.rules.join(","))
            ));
        }
        let _ = fs::write(self.record_path(path), out);
    }
}

fn parse_record<'a>(path: &str, lines: impl Iterator<Item = &'a str>) -> Option<FileRecord> {
    let mut rec = FileRecord::default();
    for line in lines {
        let mut parts = line.split('\t');
        match parts.next()? {
            "F" => {
                let line_no: u32 = parts.next()?.parse().ok()?;
                let rule = intern_rule(parts.next()?)?;
                let item = unesc(parts.next()?);
                let message = unesc(parts.next()?);
                rec.findings.push(Finding {
                    file: path.to_string(),
                    line: line_no,
                    rule,
                    message,
                    item: if item == "-" { None } else { Some(item) },
                });
            }
            "S" => {
                let line_no: u32 = parts.next()?.parse().ok()?;
                let secret_bearing = parts.next()? == "1";
                let in_test = parts.next()? == "1";
                let fields = unesc(parts.next()?);
                let name = unesc(parts.next()?);
                rec.structs.push(StructFact {
                    name,
                    line: line_no,
                    secret_bearing,
                    in_test,
                    container_fields: if fields.is_empty() {
                        Vec::new()
                    } else {
                        fields.split(',').map(str::to_string).collect()
                    },
                });
            }
            "D" => rec.drop_impls.push(unesc(parts.next()?)),
            "Z" => {
                let zeroizes = parts.next()? == "1";
                rec.drop_zeroizes.push((unesc(parts.next()?), zeroizes));
            }
            "L" => {
                let line_no: u32 = parts.next()?.parse().ok()?;
                rec.lock_edges.push(LockEdge {
                    line: line_no,
                    held: unesc(parts.next()?),
                    acquired: unesc(parts.next()?),
                    fn_name: unesc(parts.next()?),
                });
            }
            "P" => {
                let line_no: u32 = parts.next()?.parse().ok()?;
                let end_line: u32 = parts.next()?.parse().ok()?;
                let has_reason = parts.next()? == "1";
                let rules_field = unesc(parts.next()?);
                rec.suppressions.push(Suppression {
                    rules: if rules_field.is_empty() {
                        Vec::new()
                    } else {
                        rules_field.split(',').map(str::to_string).collect()
                    },
                    has_reason,
                    line: line_no,
                    end_line,
                });
            }
            _ => return None,
        }
    }
    Some(rec)
}

/// Escapes tabs, newlines, and backslashes for the one-line-per-fact
/// format.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn escape_round_trip() {
        let s = "a\tb\\c\nd";
        assert_eq!(unesc(&esc(s)), s);
    }

    #[test]
    fn store_load_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "coldboot-lint-cache-test-{}",
            std::process::id()
        ));
        let cache = LintCache::open(&dir).unwrap();
        let rec = FileRecord {
            findings: vec![Finding {
                file: "crates/x/src/a.rs".to_string(),
                line: 7,
                rule: "panic",
                message: "msg with\ttab".to_string(),
                item: Some("unwrap".to_string()),
            }],
            structs: vec![StructFact {
                name: "Keys".to_string(),
                line: 3,
                secret_bearing: true,
                in_test: false,
                container_fields: vec!["buf".to_string(), "spare".to_string()],
            }],
            drop_impls: vec!["Keys".to_string()],
            drop_zeroizes: vec![("Keys".to_string(), true)],
            lock_edges: vec![LockEdge {
                held: "state".to_string(),
                acquired: "result".to_string(),
                line: 9,
                fn_name: "worker".to_string(),
            }],
            suppressions: vec![Suppression {
                rules: vec!["panic".to_string()],
                has_reason: true,
                line: 6,
                end_line: 6,
            }],
        };
        cache.store("crates/x/src/a.rs", "fn main() {}", 7, &rec);
        let loaded = cache.load("crates/x/src/a.rs", "fn main() {}", 7).unwrap();
        assert_eq!(loaded.findings, rec.findings);
        assert_eq!(loaded.structs.len(), 1);
        assert!(loaded.structs[0].secret_bearing);
        assert_eq!(loaded.structs[0].container_fields, rec.structs[0].container_fields);
        assert_eq!(loaded.drop_zeroizes, rec.drop_zeroizes);
        assert_eq!(loaded.lock_edges, rec.lock_edges);
        assert_eq!(loaded.suppressions.len(), 1);
        // Different contents: miss.
        assert!(cache.load("crates/x/src/a.rs", "fn other() {}", 7).is_none());
        // Different callee summaries: miss — a callee edit re-checks the caller.
        assert!(cache.load("crates/x/src/a.rs", "fn main() {}", 8).is_none());
        // Unknown path: miss.
        assert!(cache.load("crates/x/src/b.rs", "fn main() {}", 7).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_records_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "coldboot-lint-sumcache-test-{}",
            std::process::id()
        ));
        let cache = LintCache::open(&dir).unwrap();
        let facts = vec![FnFact {
            name: "Keys::expand".to_string(),
            line: 4,
            local_panic: Some(9),
            ..FnFact::default()
        }];
        cache.store_summary("crates/x/src/a.rs", "fn x() {}", &facts);
        let loaded = cache.load_summary("crates/x/src/a.rs", "fn x() {}").unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].name, "Keys::expand");
        assert_eq!(loaded[0].local_panic, Some(9));
        assert!(cache.load_summary("crates/x/src/a.rs", "fn y() {}").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
