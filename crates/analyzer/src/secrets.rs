//! The secret lexicon: deciding which identifiers name key material.
//!
//! An identifier is split into lowercase segments at `_` and camelCase
//! boundaries. It *matches* the lexicon when any segment is a secret stem
//! (`key`, `keystream`, `schedule`, ...) — covering `round_key`,
//! `master_key`, `subkey`-style compounds via their `key` segment — unless
//! its final segment marks it as metadata *about* secrets rather than
//! secret bytes themselves (`key_size`, `schedule_len`, `key_table_addr`,
//! `KEY_TABLE_BYTES`, `selector_bits`).

/// Stems that mark an identifier segment as secret-bearing. Plural forms
/// are normalised by stripping one trailing `s` before comparison.
const SECRET_STEMS: &[&str] = &[
    "key",
    "keystream",
    "schedule",
    "subkey",
    "prekey",
    "password",
    "passphrase",
    "secret",
    "seed",
];

/// Final segments that mark an identifier as *metadata about* a secret
/// (sizes, counts, addresses, flags) rather than the secret itself.
const BENIGN_TAILS: &[&str] = &[
    "size", "sizes", "len", "lens", "length", "lengths", "count", "counts", "id", "ids", "idx",
    "index", "indices", "addr", "addrs", "address", "addresses", "bit", "bits", "offset",
    "offsets", "policy", "kind", "kinds", "range", "ranges", "bytes", "words", "width", "widths",
];

/// Splits an identifier into lowercase segments at `_` and camelCase
/// boundaries: `round_key` -> [round, key], `KeySchedule` -> [key,
/// schedule], `MASTER_KEY` -> [master, key].
pub fn segments(ident: &str) -> Vec<String> {
    let mut segs = Vec::new();
    for part in ident.split('_') {
        if part.is_empty() {
            continue;
        }
        let chars: Vec<char> = part.chars().collect();
        let mut current = String::new();
        for (i, &c) in chars.iter().enumerate() {
            let prev_lower = i > 0 && chars[i - 1].is_lowercase();
            let next_lower = chars.get(i + 1).map_or(false, |n| n.is_lowercase());
            // Break before an uppercase letter that starts a new word:
            // either aB (prev lowercase) or ABc (acronym followed by word).
            if c.is_uppercase() && !current.is_empty() && (prev_lower || next_lower) {
                segs.push(current.to_lowercase());
                current = String::new();
            }
            current.push(c);
        }
        if !current.is_empty() {
            segs.push(current.to_lowercase());
        }
    }
    segs
}

pub(crate) fn singular(seg: &str) -> &str {
    seg.strip_suffix('s').filter(|s| !s.is_empty()).unwrap_or(seg)
}

/// True when `ident` names secret material under the lexicon rules above.
pub fn is_secret_ident(ident: &str) -> bool {
    let segs = segments(ident);
    if segs.is_empty() {
        return false;
    }
    let has_stem = segs
        .iter()
        .any(|s| SECRET_STEMS.contains(&singular(s)) || SECRET_STEMS.contains(&s.as_str()));
    if !has_stem {
        return false;
    }
    let tail = &segs[segs.len() - 1];
    let tail_benign =
        BENIGN_TAILS.contains(&tail.as_str()) || BENIGN_TAILS.contains(&singular(tail));
    // A benign tail that is itself a stem (e.g. `key_schedule`) stays secret.
    let tail_is_stem =
        SECRET_STEMS.contains(&singular(tail)) || SECRET_STEMS.contains(&tail.as_str());
    !(tail_benign && !tail_is_stem)
}

/// True when a field type (rendered as a token-concatenated string such as
/// `Vec<u32>`, `[u8;32]`, `Option<([u8;32],[u8;32])>`) is a byte/word
/// container that could hold key material in recoverable form.
pub fn is_container_type(ty: &str) -> bool {
    let holds_words =
        ["u8", "u16", "u32", "u64", "u128"].iter().any(|w| {
            // Match the element type as a whole word inside the rendering.
            ty.split(|c: char| !c.is_alphanumeric()).any(|tok| tok == *w)
        });
    holds_words && (ty.contains('[') || ty.contains("Vec<"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmentation() {
        assert_eq!(segments("round_key"), vec!["round", "key"]);
        assert_eq!(segments("KeySchedule"), vec!["key", "schedule"]);
        assert_eq!(segments("MASTER_KEY"), vec!["master", "key"]);
        assert_eq!(segments("XtsKeys"), vec!["xts", "keys"]);
        assert_eq!(segments("keysearch"), vec!["keysearch"]);
    }

    #[test]
    fn secret_positives() {
        for id in [
            "key",
            "keys",
            "keystream",
            "round_key",
            "master_key",
            "subkey",
            "prekey",
            "KeySchedule",
            "key_schedule",
            "data_key",
            "register_keys",
            "password",
        ] {
            assert!(is_secret_ident(id), "{id} should be secret");
        }
    }

    #[test]
    fn secret_negatives() {
        for id in [
            "key_size",
            "KeySize",
            "schedule_len",
            "key_table_addr",
            "KEY_TABLE_BYTES",
            "SCHEDULE_BYTES",
            "selector_bits",
            "KeyStoragePolicy",
            "key_count",
            "schedule_words",
            "keysearch",
            "keymap",
            "monkey", // stem must be a whole segment
            "block",
        ] {
            assert!(!is_secret_ident(id), "{id} should be benign");
        }
    }

    #[test]
    fn container_types() {
        assert!(is_container_type("Vec<u32>"));
        assert!(is_container_type("[u8;32]"));
        assert!(is_container_type("Option<([u8;32],[u8;32])>"));
        assert!(is_container_type("Vec<Vec<[u8;64]>>"));
        assert!(!is_container_type("u64"));
        assert!(!is_container_type("KeySize"));
        assert!(!is_container_type("Vec<String>"));
        assert!(!is_container_type("[f64;4]"));
    }
}
