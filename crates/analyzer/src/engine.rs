//! The rule engine: classifies files, runs every rule over the lexed token
//! streams, and applies inline suppressions plus the `lint.toml` allowlist.

use crate::config::LintConfig;
use crate::diag::Finding;
use crate::lexer::{self, Comment, Token, TokenKind};
use crate::secrets;

/// An in-memory source file with its workspace-relative path
/// (`/`-separated), the unit the engine operates on. [`crate::lint_workspace`]
/// builds these from disk; tests can build them directly.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, e.g. `crates/crypto/src/xts.rs`.
    pub path: String,
    /// Full file contents.
    pub source: String,
}

/// How a file participates in the build, derived from its path. Rules
/// scope themselves by kind: library code carries the full rule set while
/// tests, benches, and demo binaries get progressively more latitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Code under `src/` (excluding `src/bin/`).
    Lib,
    /// A binary target (`src/bin/` or `bin/`).
    Bin,
    /// An example under `examples/`.
    Example,
    /// Integration test under `tests/`.
    Test,
    /// Benchmark under `benches/`.
    Bench,
}

/// Classifies a workspace-relative path.
pub fn classify(path: &str) -> FileKind {
    let segs: Vec<&str> = path.split('/').collect();
    if segs.contains(&"tests") {
        FileKind::Test
    } else if segs.contains(&"benches") {
        FileKind::Bench
    } else if segs.contains(&"examples") {
        FileKind::Example
    } else if segs.contains(&"bin") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// The crate a workspace-relative path belongs to (`crates/<name>/...` ->
/// `<name>`; anything else is the root package).
pub fn crate_of(path: &str) -> &str {
    let mut segs = path.split('/');
    if segs.next() == Some("crates") {
        if let Some(name) = segs.next() {
            return name;
        }
    }
    "root"
}

/// True when `path` is a crate root that must carry
/// `#![forbid(unsafe_code)]`.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs"
        || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// A parsed inline `// lint:allow(rule, ...): reason` suppression.
#[derive(Debug, Clone)]
struct Suppression {
    rules: Vec<String>,
    has_reason: bool,
    line: u32,
    end_line: u32,
}

impl Suppression {
    fn covers(&self, rule: &str, line: u32) -> bool {
        self.rules.iter().any(|r| r == rule) && line >= self.line && line <= self.end_line + 1
    }
}

/// Everything the rules need about one file.
struct Analysis {
    path: String,
    kind: FileKind,
    tokens: Vec<Token>,
    in_test: Vec<bool>,
    suppressions: Vec<Suppression>,
    structs: Vec<StructInfo>,
    drop_impls: Vec<String>,
}

/// One struct definition with the facts the secret rules care about.
#[derive(Debug)]
struct StructInfo {
    name: String,
    line: u32,
    derives: Vec<String>,
    /// `(field_name, rendered_type)`; tuple fields have an empty name.
    fields: Vec<(String, String)>,
    in_test: bool,
}

impl StructInfo {
    /// A struct is secret-bearing when its own name is in the secret
    /// lexicon and it has a container-typed payload field, or when one of
    /// its fields both names a secret and is a container. Metadata fields
    /// (`selector_bits`, `key_count`, ...) never qualify, so types like
    /// `KeyMapInference` that only *describe* keys stay clean.
    fn is_secret_bearing(&self) -> bool {
        let name_secret = secrets::is_secret_ident(&self.name);
        self.fields.iter().any(|(fname, fty)| {
            if !secrets::is_container_type(fty) {
                return false;
            }
            if field_is_secret(fname) {
                return true;
            }
            name_secret && !field_is_metadata(fname)
        })
    }
}

/// Field-name payload test: carries a secret stem and does not end in a
/// metadata tail.
fn field_is_secret(name: &str) -> bool {
    if name.is_empty() {
        return false;
    }
    let segs = secrets::segments(name);
    segs.iter().any(|s| {
        secrets::is_secret_ident(s) // single-segment check against the stems
    }) && !field_is_metadata(name)
}

/// Metadata tails for *field names*: sizes, counts, addresses, bit
/// selections. Deliberately narrower than the expression-level benign set —
/// a container field named `words` or `bytes` inside a `KeySchedule` is the
/// key material itself.
fn field_is_metadata(name: &str) -> bool {
    const METADATA_TAILS: &[&str] = &[
        "size", "sizes", "len", "lens", "length", "lengths", "count", "counts", "id", "ids",
        "idx", "index", "indices", "addr", "addrs", "address", "addresses", "bit", "bits",
        "offset", "offsets", "policy", "kind", "kinds", "range", "ranges", "width", "widths",
    ];
    if name.is_empty() {
        return true; // tuple fields are judged by type alone via field_is_secret
    }
    let segs = secrets::segments(name);
    match segs.last() {
        Some(tail) => METADATA_TAILS.contains(&tail.as_str()),
        None => true,
    }
}

/// Macros whose arguments must never see secret identifiers.
const PRINT_MACROS: &[&str] = &[
    "println",
    "print",
    "eprintln",
    "eprint",
    "format",
    "format_args",
    "dbg",
    "write",
    "writeln",
];

/// Panicking constructs audited in library code.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Lints a set of in-memory sources as one workspace: runs every per-file
/// rule, then the cross-file zeroize-on-drop rule, then filters through
/// inline suppressions and the allowlist. Returned findings are sorted by
/// `(file, line, rule)`.
pub fn lint_sources(files: &[SourceFile], config: &LintConfig) -> Vec<Finding> {
    let analyses: Vec<Analysis> = files.iter().map(analyze).collect();
    let mut findings = Vec::new();
    for a in &analyses {
        rule_secret_print(a, &mut findings);
        rule_secret_debug(a, &mut findings);
        rule_const_time(a, &mut findings);
        rule_forbid_unsafe(a, &mut findings);
        rule_truncating_cast(a, &mut findings);
        rule_panic(a, &mut findings);
    }
    rule_zeroize_drop(&analyses, &mut findings);

    // Inline suppressions and the config allowlist silence ordinary
    // findings; malformed suppressions are reported afterwards and are
    // never themselves silenceable.
    findings.retain(|f| {
        let suppressed = analyses
            .iter()
            .find(|a| a.path == f.file)
            .map_or(false, |a| {
                a.suppressions
                    .iter()
                    .any(|s| s.has_reason && s.covers(f.rule, f.line))
            });
        !suppressed && !config.allows_finding(f.rule, &f.file, f.item.as_deref())
    });
    for a in &analyses {
        for s in &a.suppressions {
            if !s.has_reason {
                findings.push(Finding {
                    file: a.path.clone(),
                    line: s.line,
                    rule: "suppression",
                    message: "lint:allow without a reason is ignored; append `: <why>`"
                        .to_string(),
                    item: None,
                });
            }
            for r in &s.rules {
                if !crate::diag::RULE_IDS.contains(&r.as_str()) {
                    findings.push(Finding {
                        file: a.path.clone(),
                        line: s.line,
                        rule: "suppression",
                        message: format!("lint:allow names unknown rule `{r}`"),
                        item: None,
                    });
                }
            }
        }
    }
    findings.sort_by(|x, y| {
        (x.file.as_str(), x.line, x.rule).cmp(&(y.file.as_str(), y.line, y.rule))
    });
    findings
}

fn analyze(file: &SourceFile) -> Analysis {
    let lexed = lexer::lex(&file.source);
    let in_test = mark_test_spans(&lexed.tokens);
    let suppressions = parse_suppressions(&lexed.comments);
    let (structs, drop_impls) = parse_items(&lexed.tokens, &in_test);
    Analysis {
        path: file.path.clone(),
        kind: classify(&file.path),
        tokens: lexed.tokens,
        in_test,
        suppressions,
        structs,
        drop_impls,
    }
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

/// Marks the token spans belonging to `#[cfg(test)]` / `#[test]` items so
/// rules can skip test code.
fn mark_test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" {
            i += 1;
            continue;
        }
        // Inner attribute `#![...]`: skip, never a test marker.
        if tokens.get(i + 1).map_or(false, |t| t.text == "!") {
            i += 1;
            continue;
        }
        if !tokens.get(i + 1).map_or(false, |t| t.text == "[") {
            i += 1;
            continue;
        }
        let attr_end = match matching(tokens, i + 1, "[", "]") {
            Some(e) => e,
            None => break,
        };
        let body = &tokens[i + 2..attr_end];
        let has = |name: &str| body.iter().any(|t| is_ident(t, name));
        let is_test_attr = (has("cfg") && has("test") && !has("not"))
            || body.first().map_or(false, |t| is_ident(t, "test"));
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further outer attributes, then consume the item.
        let mut j = attr_end + 1;
        while tokens.get(j).map_or(false, |t| t.text == "#")
            && tokens.get(j + 1).map_or(false, |t| t.text == "[")
        {
            match matching(tokens, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => return in_test,
            }
        }
        // Find the item body: first `{` (then match braces) or `;` at
        // paren depth 0.
        let mut paren = 0i32;
        let mut end = None;
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" if paren == 0 => {
                    end = matching(tokens, k, "{", "}");
                    break;
                }
                ";" if paren == 0 => {
                    end = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let end = end.unwrap_or(tokens.len() - 1);
        for flag in in_test.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

/// Index of the token matching the opener at `open_idx`.
fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Parses `lint:allow(...)` suppressions out of the comment stream. Doc
/// comments never carry suppressions — they are prose that may *mention*
/// the syntax.
fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let is_doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let Some(start) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[start + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| normalize_rule(r.trim()))
            .filter(|r| !r.is_empty())
            .collect();
        let after = rest[close + 1..].trim_start();
        let has_reason = after
            .strip_prefix(':')
            .map_or(false, |reason| !reason.trim().is_empty());
        out.push(Suppression {
            rules,
            has_reason,
            line: c.line,
            end_line: c.end_line,
        });
    }
    out
}

/// Accepts the short alias the issue tracker uses for the zeroize rule.
fn normalize_rule(r: &str) -> String {
    if r == "zeroize" {
        "zeroize-drop".to_string()
    } else {
        r.to_string()
    }
}

/// One linear pass extracting struct definitions (with their derive
/// attributes and fields) and `impl Drop for X` targets.
fn parse_items(tokens: &[Token], in_test: &[bool]) -> (Vec<StructInfo>, Vec<String>) {
    let mut structs = Vec::new();
    let mut drops = Vec::new();
    let mut pending_derives: Vec<String> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.text == "#" && tokens.get(i + 1).map_or(false, |n| n.text == "[") {
            if let Some(end) = matching(tokens, i + 1, "[", "]") {
                let body = &tokens[i + 2..end];
                if body.first().map_or(false, |b| is_ident(b, "derive")) {
                    pending_derives.extend(
                        body.iter()
                            .skip(1)
                            .filter(|b| b.kind == TokenKind::Ident)
                            .map(|b| b.text.clone()),
                    );
                }
                i = end + 1;
                continue;
            }
        }
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "struct" => {
                    if let Some(info) =
                        parse_struct(tokens, i, std::mem::take(&mut pending_derives), in_test)
                    {
                        structs.push(info);
                    }
                }
                "Drop" => {
                    if tokens.get(i + 1).map_or(false, |n| is_ident(n, "for")) {
                        if let Some(name) =
                            tokens.get(i + 2).filter(|n| n.kind == TokenKind::Ident)
                        {
                            drops.push(name.text.clone());
                        }
                    }
                }
                "enum" | "fn" | "impl" | "trait" | "mod" | "union" | "const" | "static"
                | "type" | "use" | "let" | "macro" => pending_derives.clear(),
                _ => {}
            }
        }
        i += 1;
    }
    (structs, drops)
}

fn parse_struct(
    tokens: &[Token],
    struct_idx: usize,
    derives: Vec<String>,
    in_test: &[bool],
) -> Option<StructInfo> {
    let name_tok = tokens.get(struct_idx + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let mut i = struct_idx + 2;
    // Skip generic parameters.
    if tokens.get(i).map_or(false, |t| t.text == "<") {
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens[i].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Skip a where-clause, if any, up to the body.
    while i < tokens.len() && !matches!(tokens[i].text.as_str(), "{" | "(" | ";") {
        i += 1;
    }
    let mut fields = Vec::new();
    match tokens.get(i).map(|t| t.text.as_str()) {
        Some("{") => {
            let end = matching(tokens, i, "{", "}")?;
            let mut j = i + 1;
            while j < end {
                // Skip field attributes and visibility.
                while j < end && tokens[j].text == "#" {
                    j = matching(tokens, j + 1, "[", "]")? + 1;
                }
                if tokens.get(j).map_or(false, |t| is_ident(t, "pub")) {
                    j += 1;
                    if tokens.get(j).map_or(false, |t| t.text == "(") {
                        j = matching(tokens, j, "(", ")")? + 1;
                    }
                }
                if j >= end || tokens[j].kind != TokenKind::Ident {
                    break;
                }
                let fname = tokens[j].text.clone();
                j += 1;
                if !tokens.get(j).map_or(false, |t| t.text == ":") {
                    break;
                }
                j += 1;
                let (ty, next) = read_type(tokens, j, end);
                fields.push((fname, ty));
                j = next;
                if tokens.get(j).map_or(false, |t| t.text == ",") {
                    j += 1;
                }
            }
        }
        Some("(") => {
            let end = matching(tokens, i, "(", ")")?;
            let mut j = i + 1;
            while j < end {
                while j < end && tokens[j].text == "#" {
                    j = matching(tokens, j + 1, "[", "]")? + 1;
                }
                if tokens.get(j).map_or(false, |t| is_ident(t, "pub")) {
                    j += 1;
                    if tokens.get(j).map_or(false, |t| t.text == "(") {
                        j = matching(tokens, j, "(", ")")? + 1;
                    }
                }
                let (ty, next) = read_type(tokens, j, end);
                fields.push((String::new(), ty));
                j = next;
                if tokens.get(j).map_or(false, |t| t.text == ",") {
                    j += 1;
                }
            }
        }
        _ => {}
    }
    Some(StructInfo {
        name: name_tok.text.clone(),
        line: tokens[struct_idx].line,
        derives,
        fields,
        in_test: in_test.get(struct_idx).copied().unwrap_or(false),
    })
}

/// Reads a type starting at `start`, stopping at a top-level `,` or at
/// `end`. Returns the rendered type and the index of the stopping token.
fn read_type(tokens: &[Token], start: usize, end: usize) -> (String, usize) {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut ty = String::new();
    let mut j = start;
    while j < end {
        let text = tokens[j].text.as_str();
        match text {
            "<" => angle += 1,
            ">" => angle -= 1,
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "," if angle == 0 && paren == 0 && bracket == 0 => break,
            _ => {}
        }
        ty.push_str(text);
        j += 1;
    }
    (ty, j)
}

/// Idents that are "size observations" of a secret (`key.len()`,
/// `keys.is_empty()`): branching or comparing on these is fine.
fn is_len_observation(tokens: &[Token], ident_idx: usize) -> bool {
    tokens.get(ident_idx + 1).map_or(false, |d| d.text == ".")
        && tokens.get(ident_idx + 2).map_or(false, |m| {
            matches!(m.text.as_str(), "len" | "is_empty" | "capacity")
        })
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Rule `secret-print`: secret identifiers must not reach formatting /
/// printing macros, either as arguments or as `{ident}` inline captures.
fn rule_secret_print(a: &Analysis, findings: &mut Vec<Finding>) {
    if !matches!(a.kind, FileKind::Lib | FileKind::Bin | FileKind::Example) {
        return;
    }
    let toks = &a.tokens;
    for i in 0..toks.len() {
        if a.in_test[i] {
            continue;
        }
        if toks[i].kind != TokenKind::Ident || !PRINT_MACROS.contains(&toks[i].text.as_str()) {
            continue;
        }
        if !toks.get(i + 1).map_or(false, |t| t.text == "!") {
            continue;
        }
        let Some(open) = toks.get(i + 2) else { continue };
        let (oc, cc) = match open.text.as_str() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => continue,
        };
        let Some(end) = matching(toks, i + 2, oc, cc) else {
            continue;
        };
        let macro_name = toks[i].text.clone();
        for j in i + 3..end {
            let t = &toks[j];
            let mut hit: Option<String> = None;
            if t.kind == TokenKind::Ident
                && secrets::is_secret_ident(&t.text)
                && !is_len_observation(toks, j)
            {
                hit = Some(t.text.clone());
            } else if t.kind == TokenKind::Literal && t.text.contains('{') {
                hit = format_capture_secret(&t.text);
            }
            if let Some(ident) = hit {
                findings.push(Finding {
                    file: a.path.clone(),
                    line: t.line,
                    rule: "secret-print",
                    message: format!(
                        "secret identifier `{ident}` reaches `{macro_name}!`; key material \
                         must never be formatted"
                    ),
                    item: Some(ident),
                });
                break; // one finding per macro invocation
            }
        }
    }
}

/// Scans a format string body for `{ident}` / `{ident:spec}` captures that
/// name secrets.
fn format_capture_secret(body: &str) -> Option<String> {
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2;
                continue;
            }
            let mut name = String::new();
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                name.push(chars[j]);
                j += 1;
            }
            let terminated = matches!(chars.get(j), Some(':') | Some('}'));
            if terminated && !name.is_empty() && secrets::is_secret_ident(&name) {
                return Some(name);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    None
}

/// Rule `secret-debug`: a secret-bearing struct must not derive `Debug`
/// (write a redacting manual impl instead, or allowlist with a reason).
fn rule_secret_debug(a: &Analysis, findings: &mut Vec<Finding>) {
    if a.kind != FileKind::Lib {
        return;
    }
    for s in &a.structs {
        if s.in_test || !s.is_secret_bearing() {
            continue;
        }
        if s.derives.iter().any(|d| d == "Debug") {
            findings.push(Finding {
                file: a.path.clone(),
                line: s.line,
                rule: "secret-debug",
                message: format!(
                    "secret-bearing struct `{}` derives `Debug`, exposing key material via \
                     `{{:?}}`; write a redacting manual impl",
                    s.name
                ),
                item: Some(s.name.clone()),
            });
        }
    }
}

/// Rule `zeroize-drop`: secret-bearing structs in the victim-side crates
/// (`crypto`, `veracrypt`) must implement `Drop` so key bytes do not
/// linger in freed memory — the exact remanence the paper exploits.
fn rule_zeroize_drop(analyses: &[Analysis], findings: &mut Vec<Finding>) {
    let mut crate_drops: Vec<(&str, &Vec<String>)> = Vec::new();
    for a in analyses {
        crate_drops.push((crate_of(&a.path), &a.drop_impls));
    }
    for a in analyses {
        let krate = crate_of(&a.path);
        if a.kind != FileKind::Lib || !matches!(krate, "crypto" | "veracrypt") {
            continue;
        }
        for s in &a.structs {
            if s.in_test || !s.is_secret_bearing() {
                continue;
            }
            let has_drop = crate_drops
                .iter()
                .any(|(c, drops)| *c == krate && drops.iter().any(|d| d == &s.name));
            if !has_drop {
                findings.push(Finding {
                    file: a.path.clone(),
                    line: s.line,
                    rule: "zeroize-drop",
                    message: format!(
                        "secret-bearing struct `{}` has no `Drop` impl; zeroize key material \
                         before the allocation is freed",
                        s.name
                    ),
                    item: Some(s.name.clone()),
                });
            }
        }
    }
}

/// Rule `const-time`: early-exit `==`/`!=` on secret identifiers in the
/// crypto, veracrypt, and core crates, plus secret-dependent `if`/`match`
/// branches inside `crates/crypto` itself.
fn rule_const_time(a: &Analysis, findings: &mut Vec<Finding>) {
    let krate = crate_of(&a.path);
    if a.kind != FileKind::Lib || !matches!(krate, "crypto" | "veracrypt" | "core") {
        return;
    }
    let toks = &a.tokens;
    for i in 0..toks.len() {
        if a.in_test[i] {
            continue;
        }
        let text = toks[i].text.as_str();
        if toks[i].kind == TokenKind::Punct && (text == "==" || text == "!=") {
            if let Some(ident) = secret_operand(toks, i) {
                findings.push(Finding {
                    file: a.path.clone(),
                    line: toks[i].line,
                    rule: "const-time",
                    message: format!(
                        "`{text}` on secret `{ident}` is an early-exit comparison; use the \
                         constant-time helpers in `coldboot_crypto::ct`"
                    ),
                    item: Some(ident),
                });
            }
        }
        if krate == "crypto"
            && toks[i].kind == TokenKind::Ident
            && (text == "if" || text == "match")
        {
            // `if let` is a destructuring bind, not a data-dependent branch.
            if toks.get(i + 1).map_or(false, |t| is_ident(t, "let")) {
                continue;
            }
            if let Some(ident) = secret_in_condition(toks, i) {
                findings.push(Finding {
                    file: a.path.clone(),
                    line: toks[i].line,
                    rule: "const-time",
                    message: format!(
                        "`{text}` branches on secret `{ident}`; secret-dependent control \
                         flow leaks timing"
                    ),
                    item: Some(ident),
                });
            }
        }
    }
}

/// Looks for a secret identifier among the operands adjacent to a
/// comparison operator at `op_idx`.
fn secret_operand(tokens: &[Token], op_idx: usize) -> Option<String> {
    let boundary = |t: &Token| {
        matches!(
            t.text.as_str(),
            ";" | "{" | "}" | "," | "&&" | "||" | "=" | "(" | ")"
        ) || matches!(t.text.as_str(), "if" | "while" | "let" | "return" | "match")
    };
    // Walk outward in both directions until a clause boundary, bounded to a
    // small window: comparisons are syntactically local.
    for dir in [-1i64, 1i64] {
        let mut steps = 0;
        let mut j = op_idx as i64 + dir;
        while j >= 0 && (j as usize) < tokens.len() && steps < 10 {
            let t = &tokens[j as usize];
            if boundary(t) {
                break;
            }
            if t.kind == TokenKind::Ident
                && secrets::is_secret_ident(&t.text)
                && !is_len_observation(tokens, j as usize)
            {
                return Some(t.text.clone());
            }
            j += dir;
            steps += 1;
        }
    }
    None
}

/// Looks for a secret identifier inside the condition of an `if`/`match`
/// starting at `kw_idx` (tokens up to the opening `{`).
fn secret_in_condition(tokens: &[Token], kw_idx: usize) -> Option<String> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for j in kw_idx + 1..tokens.len() {
        let t = &tokens[j];
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return None,
            ";" => return None,
            _ => {}
        }
        if t.kind == TokenKind::Ident
            && secrets::is_secret_ident(&t.text)
            && !is_len_observation(tokens, j)
        {
            return Some(t.text.clone());
        }
    }
    None
}

/// Rule `forbid-unsafe`: every crate root keeps `#![forbid(unsafe_code)]`.
fn rule_forbid_unsafe(a: &Analysis, findings: &mut Vec<Finding>) {
    if !is_crate_root(&a.path) {
        return;
    }
    let toks = &a.tokens;
    let expected = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let present = (0..toks.len().saturating_sub(expected.len() - 1)).any(|i| {
        expected
            .iter()
            .enumerate()
            .all(|(k, want)| toks[i + k].text == *want)
    });
    if !present {
        findings.push(Finding {
            file: a.path.clone(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            item: None,
        });
    }
}

/// Rule `truncating-cast`: `as u8/u16/u32/usize` applied to address
/// arithmetic in the DRAM mapping/geometry modules can silently truncate a
/// physical address.
fn rule_truncating_cast(a: &Analysis, findings: &mut Vec<Finding>) {
    if a.path != "crates/dram/src/mapping.rs" && a.path != "crates/dram/src/geometry.rs" {
        return;
    }
    const NARROW: &[&str] = &["u8", "u16", "u32", "usize"];
    const ADDR_HINTS: &[&str] = &[
        "addr", "address", "phys", "physical", "index", "idx", "row", "col", "column", "bank",
        "rank", "channel", "page", "frame", "cursor", "base",
    ];
    let toks = &a.tokens;
    for i in 0..toks.len() {
        if a.in_test[i] || !is_ident(&toks[i], "as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else { continue };
        if target.kind != TokenKind::Ident || !NARROW.contains(&target.text.as_str()) {
            continue;
        }
        // Scan the cast operand backwards to the start of the expression.
        let mut j = i as i64 - 1;
        let mut steps = 0;
        while j >= 0 && steps < 16 {
            let t = &toks[j as usize];
            if matches!(t.text.as_str(), ";" | "{" | "}" | "=" | ",")
                || matches!(t.text.as_str(), "let" | "return")
            {
                break;
            }
            if t.kind == TokenKind::Ident {
                let addr_like = secrets::segments(&t.text)
                    .iter()
                    .any(|s| ADDR_HINTS.contains(&s.as_str()));
                if addr_like {
                    findings.push(Finding {
                        file: a.path.clone(),
                        line: toks[i].line,
                        rule: "truncating-cast",
                        message: format!(
                            "`as {}` on address-derived value `{}` can silently truncate a \
                             physical address",
                            target.text, t.text
                        ),
                        item: Some(t.text.clone()),
                    });
                    break;
                }
            }
            j -= 1;
            steps += 1;
        }
    }
}

/// Rule `panic`: no `unwrap()`, `expect()`, `panic!`, `unreachable!`,
/// `todo!`, or `unimplemented!` in non-test library code.
fn rule_panic(a: &Analysis, findings: &mut Vec<Finding>) {
    if a.kind != FileKind::Lib {
        return;
    }
    let toks = &a.tokens;
    for i in 0..toks.len() {
        if a.in_test[i] || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let text = toks[i].text.as_str();
        let is_method_panic = (text == "unwrap" || text == "expect")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map_or(false, |t| t.text == "(");
        let is_macro_panic = PANIC_MACROS.contains(&text)
            && toks.get(i + 1).map_or(false, |t| t.text == "!");
        if is_method_panic || is_macro_panic {
            let display = if is_macro_panic {
                format!("{text}!")
            } else {
                format!("{text}()")
            };
            findings.push(Finding {
                file: a.path.clone(),
                line: toks[i].line,
                rule: "panic",
                message: format!(
                    "`{display}` in library code; propagate an error or justify with \
                     lint:allow(panic)"
                ),
                item: Some(text.to_string()),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Vec<Finding> {
        lint_sources(
            &[SourceFile {
                path: path.to_string(),
                source: src.to_string(),
            }],
            &LintConfig::default(),
        )
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/attack.rs"), FileKind::Lib);
        assert_eq!(classify("crates/core/src/bin/demo.rs"), FileKind::Bin);
        assert_eq!(classify("crates/core/tests/e2e.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/benches/b.rs"), FileKind::Bench);
        assert_eq!(classify("examples/ex.rs"), FileKind::Example);
        assert_eq!(classify("tests/lint_gate.rs"), FileKind::Test);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/crypto/src/xts.rs"), "crypto");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("tests/lint_gate.rs"), "root");
    }

    #[test]
    fn test_spans_are_marked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn b() { y.unwrap(); }\n}";
        let findings = lint_one("crates/core/src/a.rs", src);
        let panics: Vec<_> = findings.iter().filter(|f| f.rule == "panic").collect();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].line, 1);
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "fn a() {\n    // lint:allow(panic): structurally infallible here\n    x.unwrap();\n}";
        let findings = lint_one("crates/core/src/a.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn suppression_without_reason_is_reported() {
        let src = "fn a() {\n    // lint:allow(panic)\n    x.unwrap();\n}";
        let findings = lint_one("crates/core/src/a.rs", src);
        assert!(findings.iter().any(|f| f.rule == "panic"));
        assert!(findings.iter().any(|f| f.rule == "suppression"));
    }

    #[test]
    fn forbid_unsafe_only_on_crate_roots() {
        let missing = lint_one("crates/core/src/lib.rs", "pub fn f() {}");
        assert!(missing.iter().any(|f| f.rule == "forbid-unsafe"));
        let present = lint_one(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
        );
        assert!(present.iter().all(|f| f.rule != "forbid-unsafe"));
        let non_root = lint_one("crates/core/src/other.rs", "pub fn f() {}");
        assert!(non_root.iter().all(|f| f.rule != "forbid-unsafe"));
    }

    #[test]
    fn drop_impl_satisfies_zeroize() {
        let src = "pub struct RoundKeys { words: Vec<u32> }\nimpl Drop for RoundKeys { fn drop(&mut self) {} }";
        let findings = lint_one("crates/crypto/src/k.rs", src);
        assert!(findings.iter().all(|f| f.rule != "zeroize-drop"), "{findings:?}");
    }

    #[test]
    fn zeroize_flags_secret_struct_without_drop() {
        let src = "pub struct RoundKeys { words: Vec<u32> }";
        let findings = lint_one("crates/crypto/src/k.rs", src);
        assert!(findings.iter().any(|f| f.rule == "zeroize-drop" && f.item.as_deref() == Some("RoundKeys")));
        // Outside crypto/veracrypt the rule does not apply.
        let elsewhere = lint_one("crates/scrambler/src/k.rs", src);
        assert!(elsewhere.iter().all(|f| f.rule != "zeroize-drop"));
    }

    #[test]
    fn format_capture_detection() {
        assert_eq!(
            format_capture_secret("round trip {master_key:02x}"),
            Some("master_key".to_string())
        );
        assert_eq!(format_capture_secret("count {n} of {total}"), None);
        assert_eq!(format_capture_secret("escaped {{key}}"), None);
    }
}
