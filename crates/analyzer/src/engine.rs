//! The rule engine: classifies files, runs the per-file rules (token-level
//! and AST/dataflow) over each source, merges per-file facts into the
//! workspace passes (zeroize-drop, lock-order cycles, stale-allow), and
//! applies inline suppressions plus the `lint.toml` allowlist.
//!
//! Per-file work fans out over a work-stealing thread pool (an atomic
//! cursor hands out batches; results merge back in deterministic file
//! order — the same shape as `coldboot_core::scan`'s engine, hand-rolled
//! here on `std::thread::scope` to keep this crate dependency-free) and
//! is memoized in a content-hash cache so warm runs re-analyze only
//! changed files.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::ast;
use crate::cache::LintCache;
use crate::callgraph::CallGraph;
use crate::config::LintConfig;
use crate::dataflow::{self, InterCtx};
use crate::diag::Finding;
use crate::lexer::{self, Comment, Token, TokenKind};
use crate::locks::{self, LockEdge};
use crate::secrets;
use crate::summaries::{self, FnFact, SummaryCtx, SummaryStats};

/// An in-memory source file with its workspace-relative path
/// (`/`-separated), the unit the engine operates on. [`crate::lint_workspace`]
/// builds these from disk; tests can build them directly.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, e.g. `crates/crypto/src/xts.rs`.
    pub path: String,
    /// Full file contents.
    pub source: String,
}

/// How a file participates in the build, derived from its path. Rules
/// scope themselves by kind: library code carries the full rule set while
/// tests, benches, and demo binaries get progressively more latitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Code under `src/` (excluding `src/bin/`).
    Lib,
    /// A binary target (`src/bin/` or `bin/`).
    Bin,
    /// An example under `examples/`.
    Example,
    /// Integration test under `tests/`.
    Test,
    /// Benchmark under `benches/`.
    Bench,
}

/// Classifies a workspace-relative path.
pub fn classify(path: &str) -> FileKind {
    let segs: Vec<&str> = path.split('/').collect();
    if segs.contains(&"tests") {
        FileKind::Test
    } else if segs.contains(&"benches") {
        FileKind::Bench
    } else if segs.contains(&"examples") {
        FileKind::Example
    } else if segs.contains(&"bin") {
        FileKind::Bin
    } else {
        FileKind::Lib
    }
}

/// The crate a workspace-relative path belongs to (`crates/<name>/...` ->
/// `<name>`; anything else is the root package).
pub fn crate_of(path: &str) -> &str {
    let mut segs = path.split('/');
    if segs.next() == Some("crates") {
        if let Some(name) = segs.next() {
            return name;
        }
    }
    "root"
}

/// True when `path` is a crate root that must carry
/// `#![forbid(unsafe_code)]`.
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs"
        || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// A parsed inline `// lint:allow(rule, ...): reason` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Suppression {
    pub(crate) rules: Vec<String>,
    pub(crate) has_reason: bool,
    pub(crate) line: u32,
    pub(crate) end_line: u32,
}

impl Suppression {
    pub(crate) fn covers(&self, rule: &str, line: u32) -> bool {
        self.rules.iter().any(|r| r == rule) && line >= self.line && line <= self.end_line + 1
    }
}

/// Everything the rules need about one file.
pub(crate) struct Analysis {
    pub(crate) path: String,
    pub(crate) kind: FileKind,
    pub(crate) tokens: Vec<Token>,
    pub(crate) in_test: Vec<bool>,
    pub(crate) suppressions: Vec<Suppression>,
    pub(crate) structs: Vec<StructInfo>,
    pub(crate) drop_impls: Vec<String>,
    pub(crate) ast: ast::Ast,
}

/// The cacheable result of analyzing one file: raw (pre-suppression,
/// pre-allowlist) per-file findings plus the facts the workspace passes
/// consume. Deliberately independent of `lint.toml`, so allowlist edits
/// never invalidate the cache.
#[derive(Debug, Clone, Default)]
pub(crate) struct FileRecord {
    pub(crate) findings: Vec<Finding>,
    pub(crate) structs: Vec<StructFact>,
    pub(crate) drop_impls: Vec<String>,
    /// Per `Drop` impl in this file: `(target, body zeroizes)`.
    pub(crate) drop_zeroizes: Vec<(String, bool)>,
    pub(crate) lock_edges: Vec<LockEdge>,
    pub(crate) suppressions: Vec<Suppression>,
}

/// The cross-file-relevant facts about one struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StructFact {
    pub(crate) name: String,
    pub(crate) line: u32,
    pub(crate) secret_bearing: bool,
    pub(crate) in_test: bool,
    /// Names of container-typed fields (the ones that can hold key
    /// bytes), for matching secret-tainted struct-literal inits.
    pub(crate) container_fields: Vec<String>,
}

/// One struct definition with the facts the secret rules care about.
#[derive(Debug)]
pub(crate) struct StructInfo {
    name: String,
    line: u32,
    derives: Vec<String>,
    /// `(field_name, rendered_type)`; tuple fields have an empty name.
    fields: Vec<(String, String)>,
    in_test: bool,
}

impl StructInfo {
    /// Container-typed field names — the fields that can physically hold
    /// key bytes.
    fn container_fields(&self) -> Vec<String> {
        self.fields
            .iter()
            .filter(|(name, ty)| !name.is_empty() && secrets::is_container_type(ty))
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// A struct is secret-bearing when its own name is in the secret
    /// lexicon and it has a container-typed payload field, or when one of
    /// its fields both names a secret and is a container. Metadata fields
    /// (`selector_bits`, `key_count`, ...) never qualify, so types like
    /// `KeyMapInference` that only *describe* keys stay clean.
    fn is_secret_bearing(&self) -> bool {
        let name_secret = secrets::is_secret_ident(&self.name);
        self.fields.iter().any(|(fname, fty)| {
            if !secrets::is_container_type(fty) {
                return false;
            }
            if field_is_secret(fname) {
                return true;
            }
            name_secret && !field_is_metadata(fname)
        })
    }
}

/// Field-name payload test: carries a secret stem and does not end in a
/// metadata tail.
fn field_is_secret(name: &str) -> bool {
    if name.is_empty() {
        return false;
    }
    let segs = secrets::segments(name);
    segs.iter().any(|s| {
        secrets::is_secret_ident(s) // single-segment check against the stems
    }) && !field_is_metadata(name)
}

/// Metadata tails for *field names*: sizes, counts, addresses, bit
/// selections. Deliberately narrower than the expression-level benign set —
/// a container field named `words` or `bytes` inside a `KeySchedule` is the
/// key material itself.
fn field_is_metadata(name: &str) -> bool {
    const METADATA_TAILS: &[&str] = &[
        "size", "sizes", "len", "lens", "length", "lengths", "count", "counts", "id", "ids",
        "idx", "index", "indices", "addr", "addrs", "address", "addresses", "bit", "bits",
        "offset", "offsets", "policy", "kind", "kinds", "range", "ranges", "width", "widths",
    ];
    if name.is_empty() {
        return true; // tuple fields are judged by type alone via field_is_secret
    }
    let segs = secrets::segments(name);
    match segs.last() {
        Some(tail) => METADATA_TAILS.contains(&tail.as_str()),
        None => true,
    }
}

/// Macros whose arguments must never see secret identifiers.
pub(crate) const PRINT_MACROS: &[&str] = &[
    "println",
    "print",
    "eprintln",
    "eprint",
    "format",
    "format_args",
    "dbg",
    "write",
    "writeln",
];

/// Panicking constructs audited in library code.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Tuning knobs for a lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Worker threads for the per-file fan-out; `0` picks the machine's
    /// available parallelism.
    pub threads: usize,
    /// Analysis cache directory (usually `<root>/target/lint-cache`);
    /// `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Report `lint.toml` allow entries that match no raw finding.
    pub check_stale_allows: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_dir: None,
            check_stale_allows: true,
        }
    }
}

/// Bookkeeping from one run, for the CLI's `--stats` and the cache tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Files considered.
    pub files: usize,
    /// Files whose *check phase* re-ran this run (lex/parse/rules). This
    /// is the dependency-aware count: a file re-checks when its own text
    /// changed or a callee's summary did.
    pub reanalyzed: usize,
    /// Files whose check phase was served from the cache.
    pub cached: usize,
    /// Files whose summary facts were re-extracted this run (summary
    /// records key on file content alone).
    pub summarized: usize,
    /// Files whose summary facts came from the cache.
    pub summary_cached: usize,
    /// Interprocedural bookkeeping from the fixpoint.
    pub summary: SummaryStats,
}

/// Findings plus run bookkeeping.
#[derive(Debug)]
pub struct LintRun {
    pub findings: Vec<Finding>,
    pub stats: RunStats,
}

/// Lints a set of in-memory sources as one workspace with default
/// options (no cache, auto threads) and without stale-allow checking —
/// partial file sets legitimately leave allow entries unmatched. Kept as
/// the stable simple entry point; [`lint_sources_with`] exposes the full
/// surface.
pub fn lint_sources(files: &[SourceFile], config: &LintConfig) -> Vec<Finding> {
    let opts = LintOptions {
        check_stale_allows: false,
        ..LintOptions::default()
    };
    lint_sources_with(files, config, &opts).findings
}

/// The summary phase: per-file fact extraction (cached on content alone)
/// followed by the global fixpoint. Returns the resolved workspace view,
/// the analyses of files that had to be parsed (reused by the check
/// phase), and the fresh-extraction count.
fn summary_phase(
    files: &[SourceFile],
    cache: Option<&LintCache>,
    threads: usize,
) -> (SummaryCtx, Vec<Option<Analysis>>, usize) {
    let extracted: Vec<(Vec<FnFact>, Option<Analysis>, bool)> =
        par_map(files, threads, |file| {
            if let Some(c) = cache {
                if let Some(facts) = c.load_summary(&file.path, &file.source) {
                    return (facts, None, false);
                }
            }
            let a = analyze(file);
            let facts = summaries::extract(&a);
            if let Some(c) = cache {
                c.store_summary(&file.path, &file.source, &facts);
            }
            (facts, Some(a), true)
        });
    let summarized = extracted.iter().filter(|(_, _, fresh)| *fresh).count();
    let mut facts = Vec::with_capacity(extracted.len());
    let mut analyses = Vec::with_capacity(extracted.len());
    for (f, a, _) in extracted {
        facts.push(f);
        analyses.push(a);
    }
    let graph = CallGraph::build(files.iter().map(|f| f.path.clone()).collect(), facts);
    let (sums, stats) = summaries::fixpoint(&graph);
    (SummaryCtx::new(graph, sums, stats), analyses, summarized)
}

/// Lints a set of in-memory sources as one workspace, in two phases.
/// Phase one extracts per-function summary facts from every file (cached
/// on file content) and iterates the interprocedural fixpoint over the
/// workspace call graph. Phase two runs every per-file rule with the
/// resolved summaries in scope (cached on file content *plus* the summary
/// hashes of the file's callees, so editing a callee re-checks dependent
/// callers and only them), then the cross-file passes (zeroize-on-drop,
/// zeroize-coverage, panic-reachability, blocking-in-worker, lock-order
/// cycles), then filters through inline suppressions and the allowlist,
/// reporting stale allow entries when asked. Returned findings are sorted
/// by `(file, line, rule)` and are deterministic for a given input
/// regardless of thread count or cache state.
pub fn lint_sources_with(
    files: &[SourceFile],
    config: &LintConfig,
    opts: &LintOptions,
) -> LintRun {
    let cache = opts
        .cache_dir
        .as_deref()
        .and_then(|dir| LintCache::open(dir).ok());
    let cache = cache.as_ref();

    let (sctx, analyses, summarized) = summary_phase(files, cache, opts.threads);
    let dep_hashes: Vec<u64> = (0..files.len()).map(|i| sctx.file_dep_hash(i)).collect();

    let items: Vec<(usize, Option<Analysis>)> = analyses.into_iter().enumerate().collect();
    let results: Vec<(FileRecord, bool)> = par_map(&items, opts.threads, |(i, a_opt)| {
        let file = &files[*i];
        let deps = dep_hashes[*i];
        if let Some(c) = cache {
            if let Some(rec) = c.load(&file.path, &file.source, deps) {
                return (rec, false);
            }
        }
        let owned;
        let a = match a_opt {
            Some(a) => a,
            None => {
                owned = analyze(file);
                &owned
            }
        };
        let ic = InterCtx {
            ctx: &sctx,
            file: *i,
        };
        let rec = analyze_file(a, Some(&ic));
        if let Some(c) = cache {
            c.store(&file.path, &file.source, deps, &rec);
        }
        (rec, true)
    });
    let reanalyzed = results.iter().filter(|(_, fresh)| *fresh).count();
    let records: Vec<(String, FileRecord)> = files
        .iter()
        .map(|f| f.path.clone())
        .zip(results.into_iter().map(|(rec, _)| rec))
        .collect();

    let mut findings: Vec<Finding> = records
        .iter()
        .flat_map(|(_, rec)| rec.findings.iter().cloned())
        .collect();
    rule_zeroize_drop(&records, &mut findings);
    rule_zeroize_coverage(&records, &sctx, &mut findings);
    findings.extend(sctx.panic_reachability_findings());
    findings.extend(sctx.blocking_in_worker_findings());
    findings.extend(crate::concurrency::findings(&sctx));
    let mut lock_edges: Vec<(String, LockEdge)> = Vec::new();
    for (path, rec) in &records {
        for e in &rec.lock_edges {
            lock_edges.push((path.clone(), e.clone()));
        }
    }
    findings.extend(locks::cycle_findings(&lock_edges));

    // Stale-allow detection runs against the *raw* findings: an allow
    // entry that would silence nothing is dead weight (or a typo'd path).
    let stale: Vec<Finding> = if opts.check_stale_allows {
        config
            .allows
            .iter()
            .filter(|entry| {
                !findings
                    .iter()
                    .any(|f| entry.matches(f.rule, &f.file, f.item.as_deref()))
            })
            .map(|entry| Finding {
                file: "lint.toml".to_string(),
                line: entry.line,
                rule: "stale-allow",
                message: format!(
                    "allow entry (rule `{}`, path `{}`) matches no finding; delete it or \
                     run with --allow-unused-allows",
                    entry.rule, entry.path
                ),
                item: entry.item.clone(),
            })
            .collect()
    } else {
        Vec::new()
    };

    // Inline suppressions and the config allowlist silence ordinary
    // findings; malformed suppressions and stale allows are reported
    // afterwards and are never themselves silenceable.
    findings.retain(|f| {
        let suppressed = records
            .iter()
            .find(|(path, _)| path == &f.file)
            .map_or(false, |(_, rec)| {
                rec.suppressions
                    .iter()
                    .any(|s| s.has_reason && s.covers(f.rule, f.line))
            });
        !suppressed && !config.allows_finding(f.rule, &f.file, f.item.as_deref())
    });
    findings.extend(stale);
    for (path, rec) in &records {
        for s in &rec.suppressions {
            if !s.has_reason {
                findings.push(Finding {
                    file: path.clone(),
                    line: s.line,
                    rule: "suppression",
                    message: "lint:allow without a reason is ignored; append `: <why>`"
                        .to_string(),
                    item: None,
                });
            }
            for r in &s.rules {
                if !crate::diag::RULE_IDS.contains(&r.as_str()) {
                    findings.push(Finding {
                        file: path.clone(),
                        line: s.line,
                        rule: "suppression",
                        message: format!("lint:allow names unknown rule `{r}`"),
                        item: None,
                    });
                }
            }
        }
    }
    findings.sort_by(|x, y| {
        (x.file.as_str(), x.line, x.rule).cmp(&(y.file.as_str(), y.line, y.rule))
    });
    LintRun {
        findings,
        stats: RunStats {
            files: files.len(),
            reanalyzed,
            cached: files.len() - reanalyzed,
            summarized,
            summary_cached: files.len() - summarized,
            summary: sctx.stats,
        },
    }
}

/// Bookkeeping from a summary-only run ([`summarize_sources`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryRun {
    /// Files whose facts were re-extracted.
    pub summarized: usize,
    /// Files served from the summary cache.
    pub summary_cached: usize,
    /// Fixpoint bookkeeping.
    pub stats: SummaryStats,
}

/// Runs only the summary phase — fact extraction plus the interprocedural
/// fixpoint — without the check phase. This isolates the interprocedural
/// overhead for benchmarks and tooling.
pub fn summarize_sources(files: &[SourceFile], opts: &LintOptions) -> SummaryRun {
    let cache = opts
        .cache_dir
        .as_deref()
        .and_then(|dir| LintCache::open(dir).ok());
    let (sctx, _, summarized) = summary_phase(files, cache.as_ref(), opts.threads);
    SummaryRun {
        summarized,
        summary_cached: files.len() - summarized,
        stats: sctx.stats,
    }
}

/// Runs the summary phase plus only the v4 concurrency pass (thread-role
/// graph + the four concurrency rule families), skipping per-file checks.
/// This isolates the concurrency-phase overhead for `lint_throughput`.
pub fn concurrency_findings(files: &[SourceFile], opts: &LintOptions) -> Vec<Finding> {
    let cache = opts
        .cache_dir
        .as_deref()
        .and_then(|dir| LintCache::open(dir).ok());
    let (sctx, _, _) = summary_phase(files, cache.as_ref(), opts.threads);
    crate::concurrency::findings(&sctx)
}

/// Runs the full per-file check pass: every per-file rule over an already
/// parsed [`Analysis`], with the interprocedural context in scope. This
/// is the unit of work the check cache memoizes and the thread pool fans
/// out. `ic` is `None` only in narrow unit tests; the engine always
/// passes the resolved workspace view.
pub(crate) fn analyze_file(a: &Analysis, ic: Option<&InterCtx>) -> FileRecord {
    let mut findings = Vec::new();
    rule_secret_print(a, &mut findings);
    rule_secret_debug(a, &mut findings);
    rule_const_time(a, &mut findings);
    rule_forbid_unsafe(a, &mut findings);
    rule_truncating_cast(a, &mut findings);
    rule_panic(a, &mut findings);
    dataflow::run(a, ic, &mut findings);
    let mut lock_edges = Vec::new();
    locks::scan_file(a, &mut lock_edges, &mut findings);
    FileRecord {
        findings,
        structs: a
            .structs
            .iter()
            .map(|s| StructFact {
                name: s.name.clone(),
                line: s.line,
                secret_bearing: s.is_secret_bearing(),
                in_test: s.in_test,
                container_fields: s.container_fields(),
            })
            .collect(),
        drop_impls: a.drop_impls.clone(),
        drop_zeroizes: a
            .drop_impls
            .iter()
            .map(|t| (t.clone(), drop_body_zeroizes(a, t)))
            .collect(),
        lock_edges,
        suppressions: a.suppressions.clone(),
    }
}

/// True when `impl Drop for target`'s `drop` body plausibly zeroizes:
/// it calls `zeroize`/`fill`/`write_volatile` or assigns a zero literal
/// (`*w = 0`, `self.key = [0u8; 32]`).
fn drop_body_zeroizes(a: &Analysis, target: &str) -> bool {
    let name = format!("{target}::drop");
    let Some(f) = a.ast.fns.iter().find(|f| f.name == name) else {
        return false;
    };
    let (start, end) = f.body.span;
    let toks = &a.tokens[start.min(a.tokens.len())..(end + 1).min(a.tokens.len())];
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "zeroize" | "fill" | "write_volatile")
        {
            return true;
        }
        if t.text == "=" {
            let mut j = i + 1;
            if toks.get(j).map_or(false, |n| n.text == "[") {
                j += 1;
            }
            if toks.get(j).map_or(false, |n| {
                n.kind == TokenKind::Literal && n.text.starts_with('0')
            }) {
                return true;
            }
        }
    }
    false
}

/// Work-stealing parallel map preserving input order: an atomic cursor
/// hands out fixed-size batches to scoped worker threads, and results are
/// merged back sorted by index, so the output is identical to the
/// sequential map.
fn par_map<T, R>(items: &[T], threads: usize, f: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    const BATCH: usize = 4;
    let n = items.len();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
    .min(n.max(1))
    .min(16);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(BATCH, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for (i, item) in items.iter().enumerate().skip(start).take(BATCH) {
                        local.push((i, f(item)));
                    }
                }
                collected
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .extend(local);
            });
        }
    });
    let mut indexed = collected
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Analyzes an in-memory `(path, source)` pair — a convenience for unit
/// tests in this crate.
#[cfg(test)]
pub(crate) fn analyze_source(path: &str, source: &str) -> Analysis {
    analyze(&SourceFile {
        path: path.to_string(),
        source: source.to_string(),
    })
}

fn analyze(file: &SourceFile) -> Analysis {
    let lexed = lexer::lex(&file.source);
    let in_test = mark_test_spans(&lexed.tokens);
    let suppressions = parse_suppressions(&lexed.comments);
    let parsed = ast::parse(&lexed.tokens);
    let structs = parsed
        .structs
        .iter()
        .map(|s| StructInfo {
            name: s.name.clone(),
            line: s.line,
            derives: s.derives.clone(),
            fields: s.fields.clone(),
            in_test: in_test.get(s.tok).copied().unwrap_or(false),
        })
        .collect();
    let drop_impls = parsed.drop_impls.clone();
    Analysis {
        path: file.path.clone(),
        kind: classify(&file.path),
        tokens: lexed.tokens,
        in_test,
        suppressions,
        structs,
        drop_impls,
        ast: parsed,
    }
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

/// Marks the token spans belonging to `#[cfg(test)]` / `#[test]` items so
/// rules can skip test code.
fn mark_test_spans(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text != "#" {
            i += 1;
            continue;
        }
        // Inner attribute `#![...]`: skip, never a test marker.
        if tokens.get(i + 1).map_or(false, |t| t.text == "!") {
            i += 1;
            continue;
        }
        if !tokens.get(i + 1).map_or(false, |t| t.text == "[") {
            i += 1;
            continue;
        }
        let attr_end = match matching(tokens, i + 1, "[", "]") {
            Some(e) => e,
            None => break,
        };
        let body = &tokens[i + 2..attr_end];
        let has = |name: &str| body.iter().any(|t| is_ident(t, name));
        let is_test_attr = (has("cfg") && has("test") && !has("not"))
            || body.first().map_or(false, |t| is_ident(t, "test"));
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further outer attributes, then consume the item.
        let mut j = attr_end + 1;
        while tokens.get(j).map_or(false, |t| t.text == "#")
            && tokens.get(j + 1).map_or(false, |t| t.text == "[")
        {
            match matching(tokens, j + 1, "[", "]") {
                Some(e) => j = e + 1,
                None => return in_test,
            }
        }
        // Find the item body: first `{` (then match braces) or `;` at
        // paren depth 0.
        let mut paren = 0i32;
        let mut end = None;
        let mut k = j;
        while k < tokens.len() {
            match tokens[k].text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "{" if paren == 0 => {
                    end = matching(tokens, k, "{", "}");
                    break;
                }
                ";" if paren == 0 => {
                    end = Some(k);
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let end = end.unwrap_or(tokens.len() - 1);
        for flag in in_test.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

/// Index of the token matching the opener at `open_idx`.
fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Parses `lint:allow(...)` suppressions out of the comment stream. Doc
/// comments never carry suppressions — they are prose that may *mention*
/// the syntax.
fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let is_doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let Some(start) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[start + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| normalize_rule(r.trim()))
            .filter(|r| !r.is_empty())
            .collect();
        let after = rest[close + 1..].trim_start();
        let has_reason = after
            .strip_prefix(':')
            .map_or(false, |reason| !reason.trim().is_empty());
        out.push(Suppression {
            rules,
            has_reason,
            line: c.line,
            end_line: c.end_line,
        });
    }
    out
}

/// Accepts the short alias the issue tracker uses for the zeroize rule.
fn normalize_rule(r: &str) -> String {
    if r == "zeroize" {
        "zeroize-drop".to_string()
    } else {
        r.to_string()
    }
}

/// Idents that are "size observations" of a secret (`key.len()`,
/// `keys.is_empty()`): branching or comparing on these is fine.
fn is_len_observation(tokens: &[Token], ident_idx: usize) -> bool {
    tokens.get(ident_idx + 1).map_or(false, |d| d.text == ".")
        && tokens.get(ident_idx + 2).map_or(false, |m| {
            matches!(m.text.as_str(), "len" | "is_empty" | "capacity")
        })
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// Rule `secret-print`: secret identifiers must not reach formatting /
/// printing macros, either as arguments or as `{ident}` inline captures.
fn rule_secret_print(a: &Analysis, findings: &mut Vec<Finding>) {
    if !matches!(a.kind, FileKind::Lib | FileKind::Bin | FileKind::Example) {
        return;
    }
    let toks = &a.tokens;
    for i in 0..toks.len() {
        if a.in_test[i] {
            continue;
        }
        if toks[i].kind != TokenKind::Ident || !PRINT_MACROS.contains(&toks[i].text.as_str()) {
            continue;
        }
        if !toks.get(i + 1).map_or(false, |t| t.text == "!") {
            continue;
        }
        let Some(open) = toks.get(i + 2) else { continue };
        let (oc, cc) = match open.text.as_str() {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => continue,
        };
        let Some(end) = matching(toks, i + 2, oc, cc) else {
            continue;
        };
        let macro_name = toks[i].text.clone();
        for j in i + 3..end {
            let t = &toks[j];
            let mut hit: Option<String> = None;
            if t.kind == TokenKind::Ident
                && secrets::is_secret_ident(&t.text)
                && !is_len_observation(toks, j)
            {
                hit = Some(t.text.clone());
            } else if t.kind == TokenKind::Literal && t.text.contains('{') {
                hit = format_capture_secret(&t.text);
            }
            if let Some(ident) = hit {
                findings.push(Finding {
                    file: a.path.clone(),
                    line: t.line,
                    rule: "secret-print",
                    message: format!(
                        "secret identifier `{ident}` reaches `{macro_name}!`; key material \
                         must never be formatted"
                    ),
                    item: Some(ident),
                });
                break; // one finding per macro invocation
            }
        }
    }
}

/// Extracts the `{ident}` / `{ident:spec}` inline captures from a format
/// string body (escaped `{{` skipped, positional `{}` / `{0}` ignored).
pub(crate) fn format_captures(body: &str) -> Vec<String> {
    let chars: Vec<char> = body.chars().collect();
    let mut captures = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2;
                continue;
            }
            let mut name = String::new();
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                name.push(chars[j]);
                j += 1;
            }
            let terminated = matches!(chars.get(j), Some(':') | Some('}'));
            if terminated && !name.is_empty() && !name.chars().all(|c| c.is_ascii_digit()) {
                captures.push(name);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    captures
}

/// Scans a format string body for `{ident}` / `{ident:spec}` captures that
/// name secrets.
fn format_capture_secret(body: &str) -> Option<String> {
    format_captures(body)
        .into_iter()
        .find(|name| secrets::is_secret_ident(name))
}

/// Rule `secret-debug`: a secret-bearing struct must not derive `Debug`
/// (write a redacting manual impl instead, or allowlist with a reason).
fn rule_secret_debug(a: &Analysis, findings: &mut Vec<Finding>) {
    if a.kind != FileKind::Lib {
        return;
    }
    for s in &a.structs {
        if s.in_test || !s.is_secret_bearing() {
            continue;
        }
        if s.derives.iter().any(|d| d == "Debug") {
            findings.push(Finding {
                file: a.path.clone(),
                line: s.line,
                rule: "secret-debug",
                message: format!(
                    "secret-bearing struct `{}` derives `Debug`, exposing key material via \
                     `{{:?}}`; write a redacting manual impl",
                    s.name
                ),
                item: Some(s.name.clone()),
            });
        }
    }
}

/// Rule `zeroize-drop`: secret-bearing structs in the victim-side crates
/// (`crypto`, `veracrypt`) must implement `Drop` so key bytes do not
/// linger in freed memory — the exact remanence the paper exploits.
fn rule_zeroize_drop(records: &[(String, FileRecord)], findings: &mut Vec<Finding>) {
    let mut crate_drops: Vec<(&str, &Vec<String>)> = Vec::new();
    for (path, rec) in records {
        crate_drops.push((crate_of(path), &rec.drop_impls));
    }
    for (path, rec) in records {
        let krate = crate_of(path);
        if classify(path) != FileKind::Lib || !matches!(krate, "crypto" | "veracrypt") {
            continue;
        }
        for s in &rec.structs {
            if s.in_test || !s.secret_bearing {
                continue;
            }
            let has_drop = crate_drops
                .iter()
                .any(|(c, drops)| *c == krate && drops.iter().any(|d| d == &s.name));
            if !has_drop {
                findings.push(Finding {
                    file: path.clone(),
                    line: s.line,
                    rule: "zeroize-drop",
                    message: format!(
                        "secret-bearing struct `{}` has no `Drop` impl; zeroize key material \
                         before the allocation is freed",
                        s.name
                    ),
                    item: Some(s.name.clone()),
                });
            }
        }
    }
}

/// Crates in scope for `zeroize-coverage`: everywhere recovered key
/// material flows in this workspace.
const COVERAGE_CRATES: &[&str] = &["crypto", "veracrypt", "memenc", "dumpio"];

/// Rule `zeroize-coverage`: a struct that holds secret-tainted data — by
/// its own field names, or because the interprocedural analysis saw a
/// struct literal initialize a container field from key material — must
/// carry a *zeroizing* `Drop`. This widens `zeroize-drop` two ways: it
/// covers the `memenc`/`dumpio` crates and taint-discovered structs, and
/// it inspects the Drop body instead of accepting any impl. The two rules
/// stay disjoint: a secret-bearing crypto/veracrypt struct with no Drop
/// at all is `zeroize-drop`'s finding, not this one's.
fn rule_zeroize_coverage(
    records: &[(String, FileRecord)],
    sctx: &SummaryCtx,
    findings: &mut Vec<Finding>,
) {
    let mut crate_drops: Vec<(&str, &str, bool)> = Vec::new();
    for (path, rec) in records {
        for (target, zeroizes) in &rec.drop_zeroizes {
            crate_drops.push((crate_of(path), target.as_str(), *zeroizes));
        }
    }
    let inits = sctx.secret_struct_inits();
    for (path, rec) in records {
        let krate = crate_of(path);
        if classify(path) != FileKind::Lib || !COVERAGE_CRATES.contains(&krate) {
            continue;
        }
        for s in &rec.structs {
            if s.in_test {
                continue;
            }
            let tainted_field = inits
                .iter()
                .find(|(_, sn, field)| sn == &s.name && s.container_fields.contains(field))
                .map(|(_, _, field)| field.clone());
            if !s.secret_bearing && tainted_field.is_none() {
                continue;
            }
            let drop_impl = crate_drops
                .iter()
                .find(|(c, target, _)| *c == krate && *target == s.name.as_str());
            let why = match tainted_field {
                Some(field) => format!("field `{field}` is initialized from key material"),
                None => "its fields name key material".to_string(),
            };
            match drop_impl {
                Some((_, _, true)) => {}
                Some((_, _, false)) => findings.push(Finding {
                    file: path.clone(),
                    line: s.line,
                    rule: "zeroize-coverage",
                    message: format!(
                        "struct `{}` holds secret-tainted data ({why}) but its `Drop` does \
                         not zeroize; overwrite the bytes before they are freed",
                        s.name
                    ),
                    item: Some(s.name.clone()),
                }),
                None => {
                    // `zeroize-drop` already demands *a* Drop for
                    // secret-bearing structs in crypto/veracrypt.
                    let other_rules = s.secret_bearing && matches!(krate, "crypto" | "veracrypt");
                    if !other_rules {
                        findings.push(Finding {
                            file: path.clone(),
                            line: s.line,
                            rule: "zeroize-coverage",
                            message: format!(
                                "struct `{}` holds secret-tainted data ({why}) but has no \
                                 zeroizing `Drop`; key bytes will linger in freed memory",
                                s.name
                            ),
                            item: Some(s.name.clone()),
                        });
                    }
                }
            }
        }
    }
}

/// Rule `const-time`: early-exit `==`/`!=` on secret identifiers in the
/// crypto, veracrypt, and core crates, plus secret-dependent `if`/`match`
/// branches inside `crates/crypto` itself.
fn rule_const_time(a: &Analysis, findings: &mut Vec<Finding>) {
    let krate = crate_of(&a.path);
    if a.kind != FileKind::Lib || !matches!(krate, "crypto" | "veracrypt" | "core") {
        return;
    }
    let toks = &a.tokens;
    for i in 0..toks.len() {
        if a.in_test[i] {
            continue;
        }
        let text = toks[i].text.as_str();
        if toks[i].kind == TokenKind::Punct && (text == "==" || text == "!=") {
            if let Some(ident) = secret_operand(toks, i) {
                findings.push(Finding {
                    file: a.path.clone(),
                    line: toks[i].line,
                    rule: "const-time",
                    message: format!(
                        "`{text}` on secret `{ident}` is an early-exit comparison; use the \
                         constant-time helpers in `coldboot_crypto::ct`"
                    ),
                    item: Some(ident),
                });
            }
        }
        if krate == "crypto"
            && toks[i].kind == TokenKind::Ident
            && (text == "if" || text == "match")
        {
            // `if let` is a destructuring bind, not a data-dependent branch.
            if toks.get(i + 1).map_or(false, |t| is_ident(t, "let")) {
                continue;
            }
            if let Some(ident) = secret_in_condition(toks, i) {
                findings.push(Finding {
                    file: a.path.clone(),
                    line: toks[i].line,
                    rule: "const-time",
                    message: format!(
                        "`{text}` branches on secret `{ident}`; secret-dependent control \
                         flow leaks timing"
                    ),
                    item: Some(ident),
                });
            }
        }
    }
}

/// Looks for a secret identifier among the operands adjacent to a
/// comparison operator at `op_idx`.
fn secret_operand(tokens: &[Token], op_idx: usize) -> Option<String> {
    let boundary = |t: &Token| {
        matches!(
            t.text.as_str(),
            ";" | "{" | "}" | "," | "&&" | "||" | "=" | "(" | ")"
        ) || matches!(t.text.as_str(), "if" | "while" | "let" | "return" | "match")
    };
    // Walk outward in both directions until a clause boundary, bounded to a
    // small window: comparisons are syntactically local.
    for dir in [-1i64, 1i64] {
        let mut steps = 0;
        let mut j = op_idx as i64 + dir;
        while j >= 0 && (j as usize) < tokens.len() && steps < 10 {
            let t = &tokens[j as usize];
            if boundary(t) {
                break;
            }
            if t.kind == TokenKind::Ident
                && secrets::is_secret_ident(&t.text)
                && !is_len_observation(tokens, j as usize)
            {
                return Some(t.text.clone());
            }
            j += dir;
            steps += 1;
        }
    }
    None
}

/// Looks for a secret identifier inside the condition of an `if`/`match`
/// starting at `kw_idx` (tokens up to the opening `{`).
fn secret_in_condition(tokens: &[Token], kw_idx: usize) -> Option<String> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for j in kw_idx + 1..tokens.len() {
        let t = &tokens[j];
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => return None,
            ";" => return None,
            _ => {}
        }
        if t.kind == TokenKind::Ident
            && secrets::is_secret_ident(&t.text)
            && !is_len_observation(tokens, j)
        {
            return Some(t.text.clone());
        }
    }
    None
}

/// Rule `forbid-unsafe`: every crate root keeps `#![forbid(unsafe_code)]`.
fn rule_forbid_unsafe(a: &Analysis, findings: &mut Vec<Finding>) {
    if !is_crate_root(&a.path) {
        return;
    }
    let toks = &a.tokens;
    let expected = ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"];
    let present = (0..toks.len().saturating_sub(expected.len() - 1)).any(|i| {
        expected
            .iter()
            .enumerate()
            .all(|(k, want)| toks[i + k].text == *want)
    });
    if !present {
        findings.push(Finding {
            file: a.path.clone(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            item: None,
        });
    }
}

/// Rule `truncating-cast`: `as u8/u16/u32/usize` applied to address
/// arithmetic in the DRAM mapping/geometry modules can silently truncate a
/// physical address.
fn rule_truncating_cast(a: &Analysis, findings: &mut Vec<Finding>) {
    if a.path != "crates/dram/src/mapping.rs" && a.path != "crates/dram/src/geometry.rs" {
        return;
    }
    const NARROW: &[&str] = &["u8", "u16", "u32", "usize"];
    const ADDR_HINTS: &[&str] = &[
        "addr", "address", "phys", "physical", "index", "idx", "row", "col", "column", "bank",
        "rank", "channel", "page", "frame", "cursor", "base",
    ];
    let toks = &a.tokens;
    for i in 0..toks.len() {
        if a.in_test[i] || !is_ident(&toks[i], "as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else { continue };
        if target.kind != TokenKind::Ident || !NARROW.contains(&target.text.as_str()) {
            continue;
        }
        // Scan the cast operand backwards to the start of the expression.
        let mut j = i as i64 - 1;
        let mut steps = 0;
        while j >= 0 && steps < 16 {
            let t = &toks[j as usize];
            if matches!(t.text.as_str(), ";" | "{" | "}" | "=" | ",")
                || matches!(t.text.as_str(), "let" | "return")
            {
                break;
            }
            if t.kind == TokenKind::Ident {
                let addr_like = secrets::segments(&t.text)
                    .iter()
                    .any(|s| ADDR_HINTS.contains(&s.as_str()));
                if addr_like {
                    findings.push(Finding {
                        file: a.path.clone(),
                        line: toks[i].line,
                        rule: "truncating-cast",
                        message: format!(
                            "`as {}` on address-derived value `{}` can silently truncate a \
                             physical address",
                            target.text, t.text
                        ),
                        item: Some(t.text.clone()),
                    });
                    break;
                }
            }
            j -= 1;
            steps += 1;
        }
    }
}

/// Rule `panic`: no `unwrap()`, `expect()`, `panic!`, `unreachable!`,
/// `todo!`, or `unimplemented!` in non-test library code.
fn rule_panic(a: &Analysis, findings: &mut Vec<Finding>) {
    if a.kind != FileKind::Lib {
        return;
    }
    let toks = &a.tokens;
    for i in 0..toks.len() {
        if a.in_test[i] || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let text = toks[i].text.as_str();
        let is_method_panic = (text == "unwrap" || text == "expect")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map_or(false, |t| t.text == "(");
        let is_macro_panic = PANIC_MACROS.contains(&text)
            && toks.get(i + 1).map_or(false, |t| t.text == "!");
        if is_method_panic || is_macro_panic {
            let display = if is_macro_panic {
                format!("{text}!")
            } else {
                format!("{text}()")
            };
            findings.push(Finding {
                file: a.path.clone(),
                line: toks[i].line,
                rule: "panic",
                message: format!(
                    "`{display}` in library code; propagate an error or justify with \
                     lint:allow(panic)"
                ),
                item: Some(text.to_string()),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Vec<Finding> {
        lint_sources(
            &[SourceFile {
                path: path.to_string(),
                source: src.to_string(),
            }],
            &LintConfig::default(),
        )
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/attack.rs"), FileKind::Lib);
        assert_eq!(classify("crates/core/src/bin/demo.rs"), FileKind::Bin);
        assert_eq!(classify("crates/core/tests/e2e.rs"), FileKind::Test);
        assert_eq!(classify("crates/bench/benches/b.rs"), FileKind::Bench);
        assert_eq!(classify("examples/ex.rs"), FileKind::Example);
        assert_eq!(classify("tests/lint_gate.rs"), FileKind::Test);
        assert_eq!(classify("src/lib.rs"), FileKind::Lib);
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/crypto/src/xts.rs"), "crypto");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("tests/lint_gate.rs"), "root");
    }

    #[test]
    fn test_spans_are_marked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn b() { y.unwrap(); }\n}";
        let findings = lint_one("crates/core/src/a.rs", src);
        let panics: Vec<_> = findings.iter().filter(|f| f.rule == "panic").collect();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].line, 1);
    }

    #[test]
    fn suppression_with_reason_silences() {
        let src = "fn a() {\n    // lint:allow(panic): structurally infallible here\n    x.unwrap();\n}";
        let findings = lint_one("crates/core/src/a.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn suppression_without_reason_is_reported() {
        let src = "fn a() {\n    // lint:allow(panic)\n    x.unwrap();\n}";
        let findings = lint_one("crates/core/src/a.rs", src);
        assert!(findings.iter().any(|f| f.rule == "panic"));
        assert!(findings.iter().any(|f| f.rule == "suppression"));
    }

    #[test]
    fn forbid_unsafe_only_on_crate_roots() {
        let missing = lint_one("crates/core/src/lib.rs", "pub fn f() {}");
        assert!(missing.iter().any(|f| f.rule == "forbid-unsafe"));
        let present = lint_one(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
        );
        assert!(present.iter().all(|f| f.rule != "forbid-unsafe"));
        let non_root = lint_one("crates/core/src/other.rs", "pub fn f() {}");
        assert!(non_root.iter().all(|f| f.rule != "forbid-unsafe"));
    }

    #[test]
    fn drop_impl_satisfies_zeroize() {
        let src = "pub struct RoundKeys { words: Vec<u32> }\nimpl Drop for RoundKeys { fn drop(&mut self) {} }";
        let findings = lint_one("crates/crypto/src/k.rs", src);
        assert!(findings.iter().all(|f| f.rule != "zeroize-drop"), "{findings:?}");
    }

    #[test]
    fn zeroize_flags_secret_struct_without_drop() {
        let src = "pub struct RoundKeys { words: Vec<u32> }";
        let findings = lint_one("crates/crypto/src/k.rs", src);
        assert!(findings.iter().any(|f| f.rule == "zeroize-drop" && f.item.as_deref() == Some("RoundKeys")));
        // Outside crypto/veracrypt the rule does not apply.
        let elsewhere = lint_one("crates/scrambler/src/k.rs", src);
        assert!(elsewhere.iter().all(|f| f.rule != "zeroize-drop"));
    }

    #[test]
    fn format_capture_detection() {
        assert_eq!(
            format_capture_secret("round trip {master_key:02x}"),
            Some("master_key".to_string())
        );
        assert_eq!(format_capture_secret("count {n} of {total}"), None);
        assert_eq!(format_capture_secret("escaped {{key}}"), None);
    }
}
