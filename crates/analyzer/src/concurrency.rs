//! v4 concurrency rules, keyed on the thread-role graph.
//!
//! Four families, all workspace passes over the summary facts (so they
//! are interprocedural for free — roles travel the resolved call graph,
//! and channel endpoints follow plain-ident arguments one call deep):
//!
//! * `atomic-ordering` — a `Relaxed` store that publishes a value other
//!   threads read. RMW updates (`fetch_add` cursors, metrics counters)
//!   and literal-bool cancel flags are the allowed patterns; everything
//!   else needs Release/Acquire or a justified `lint.toml` allow.
//! * `blocking-in-event-loop` — `thread::sleep`, blocking socket IO, or
//!   an unbounded blocking `recv` reachable on an event-loop thread (and
//!   sleep/unbounded-recv on per-connection handler threads). Findings
//!   land on the *local* hazard site with the spawn-site provenance in
//!   the message, so a sleep two calls deep is still caught and still
//!   points at the line to fix.
//! * `channel-deadlock` — both ends of a rendezvous (`sync_channel(0)`)
//!   reachable on the same thread, and `.unwrap()`ed sends whose receiver
//!   lives on a different thread (the recycle-loop shutdown race: the
//!   peer exiting first turns a normal disconnect into a panic).
//! * `join-leak` — a `thread::spawn`/`Builder::spawn` JoinHandle that is
//!   neither used nor explicitly discarded with `let _ =`. Scoped spawns
//!   are exempt (the scope joins them).

use std::collections::{HashMap, HashSet};

use crate::dataflow::seg_matches;
use crate::diag::Finding;
use crate::summaries::{
    AtomicOpKind, AtomicOrd, ChanKind, ChanOpKind, ChannelFact, FnFact, SummaryCtx,
};
use crate::threads::{self, ThreadRole, ThreadRoles, ALL_ROLES};

/// Atomic names that are cooperative flags by construction: a literal
/// bool store with one of these segments carries no payload to publish.
const CANCEL_FLAG_SEGS: &[&str] = &["cancel", "cancelled", "canceled"];

/// Runs every concurrency rule over the resolved workspace.
pub(crate) fn findings(ctx: &SummaryCtx) -> Vec<Finding> {
    let roles = threads::build(ctx);
    let mut out = Vec::new();
    blocking_in_event_loop(ctx, &roles, &mut out);
    atomic_ordering(ctx, &roles, &mut out);
    channel_deadlock(ctx, &mut out);
    join_leak(ctx, &mut out);
    // A node can carry several roles; keep one finding per site.
    let mut seen: HashSet<(String, u32, &'static str)> = HashSet::new();
    out.retain(|f| seen.insert((f.file.clone(), f.line, f.rule)));
    out
}

fn local_name(name: &str) -> &str {
    name.rsplit("::").next().unwrap_or(name)
}

/// The channels visible to a node: its own creation sites, plus — for a
/// spawn closure — the spawning function's (captured endpoints).
fn channel_env<'a>(ctx: &'a SummaryCtx, id: usize) -> Vec<&'a ChannelFact> {
    let node = &ctx.graph.nodes[id];
    let mut out: Vec<&ChannelFact> = node.fact.channels.iter().collect();
    if let Some(pos) = node.fact.name.rfind("::spawn@") {
        let parent = &node.fact.name[..pos];
        if let Some(pf) = ctx
            .graph
            .nodes
            .iter()
            .find(|n| n.file == node.file && n.fact.name == parent)
        {
            out.extend(pf.fact.channels.iter());
        }
    }
    out
}

// ---------------------------------------------------------------------------
// blocking-in-event-loop
// ---------------------------------------------------------------------------

fn blocking_in_event_loop(ctx: &SummaryCtx, roles: &ThreadRoles, out: &mut Vec<Finding>) {
    for (id, node) in ctx.graph.nodes.iter().enumerate() {
        for role in [ThreadRole::EventLoop, ThreadRole::ConnHandler] {
            if !roles.has_role(id, role) {
                continue;
            }
            let who = roles.provenance(ctx, id, role);
            let path = &ctx.graph.file_paths[node.file];
            let item = Some(local_name(&node.fact.name).to_string());
            if let Some(line) = node.fact.local_sleep {
                out.push(Finding {
                    file: path.clone(),
                    line,
                    rule: "blocking-in-event-loop",
                    message: format!(
                        "`thread::sleep` in `{}` runs on the {who}; every connection \
                         it multiplexes waits out the sleep — poll with a timeout or \
                         use a capped backoff that resets on activity",
                        node.fact.name
                    ),
                    item: item.clone(),
                });
            }
            if role == ThreadRole::EventLoop {
                if let Some(line) = node.fact.local_block {
                    out.push(Finding {
                        file: path.clone(),
                        line,
                        rule: "blocking-in-event-loop",
                        message: format!(
                            "blocking socket IO in `{}` runs on the {who}; one slow \
                             peer stalls every connection — use nonblocking sockets \
                             or move the IO off the poll thread",
                            node.fact.name
                        ),
                        item: item.clone(),
                    });
                }
            }
            let env = channel_env(ctx, id);
            for op in &node.fact.chan_ops {
                if op.op != ChanOpKind::Recv {
                    continue;
                }
                let unbounded = env
                    .iter()
                    .any(|c| c.rx == op.endpoint && c.kind == ChanKind::Unbounded);
                if unbounded {
                    out.push(Finding {
                        file: path.clone(),
                        line: op.line,
                        rule: "blocking-in-event-loop",
                        message: format!(
                            "blocking `recv()` on unbounded channel `{}` in `{}` runs \
                             on the {who}; an empty queue parks the thread indefinitely \
                             — use try_recv/recv_timeout in the loop",
                            op.endpoint, node.fact.name
                        ),
                        item: item.clone(),
                    });
                }
            }
            // One call level deep: handing a local unbounded receiver to a
            // callee that blocks on it.
            for call in &node.fact.calls {
                for (i, arg) in call.args_id.iter().enumerate() {
                    if arg.is_empty() || i >= 16 {
                        continue;
                    }
                    let unbounded = env
                        .iter()
                        .any(|c| c.rx == *arg && c.kind == ChanKind::Unbounded);
                    if !unbounded {
                        continue;
                    }
                    let recvs = ctx
                        .graph
                        .resolve(&call.callee, node.file)
                        .iter()
                        .any(|&c| ctx.graph.nodes[c].fact.param_recv & (1 << i) != 0);
                    if recvs {
                        out.push(Finding {
                            file: path.clone(),
                            line: call.line,
                            rule: "blocking-in-event-loop",
                            message: format!(
                                "`{}` blocks on unbounded receiver `{}` passed from \
                                 `{}`, which runs on the {who} — use \
                                 try_recv/recv_timeout in the loop",
                                call.callee.display(),
                                arg,
                                node.fact.name
                            ),
                            item: item.clone(),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// atomic-ordering
// ---------------------------------------------------------------------------

fn atomic_ordering(ctx: &SummaryCtx, roles: &ThreadRoles, out: &mut Vec<Finding>) {
    // Where is each atomic name loaded, and on which thread roles? Used
    // only to make messages concrete — the rule itself flags the store.
    let mut readers: HashMap<&str, HashSet<&'static str>> = HashMap::new();
    for (id, node) in ctx.graph.nodes.iter().enumerate() {
        for at in &node.fact.atomics {
            if at.op != AtomicOpKind::Load {
                continue;
            }
            let entry = readers.entry(at.name.as_str()).or_default();
            let mut any = false;
            for role in ALL_ROLES {
                if roles.has_role(id, role) {
                    entry.insert(role.label());
                    any = true;
                }
            }
            if !any {
                entry.insert("main");
            }
        }
    }
    for node in &ctx.graph.nodes {
        for at in &node.fact.atomics {
            if at.op != AtomicOpKind::Store || at.ord != AtomicOrd::Relaxed {
                continue;
            }
            if at.is_flag && seg_matches(&at.name, CANCEL_FLAG_SEGS) {
                continue; // cooperative cancel flag: the allowed pattern
            }
            let read_by = readers.get(at.name.as_str()).map_or_else(String::new, |r| {
                let mut labels: Vec<&str> = r.iter().copied().collect();
                labels.sort_unstable();
                format!(" (loaded on: {})", labels.join(", "))
            });
            out.push(Finding {
                file: ctx.graph.file_paths[node.file].clone(),
                line: at.line,
                rule: "atomic-ordering",
                message: format!(
                    "`{}.store(_, Ordering::Relaxed)` in `{}` publishes with no \
                     release edge{read_by}; readers may observe it before the writes \
                     it guards — store(Release)/load(Acquire) for real handoffs, or a \
                     one-line lint.toml allow for monotonic gauges",
                    at.name, node.fact.name
                ),
                item: Some(at.name.clone()),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// channel-deadlock
// ---------------------------------------------------------------------------

/// Whether a context (one function fact) can reach a send/recv on the
/// named endpoint: a local op, or passing the endpoint to a callee that
/// operates on that parameter.
fn reaches_op(ctx: &SummaryCtx, fact: &FnFact, file: usize, endpoint: &str, send: bool) -> Option<u32> {
    for op in &fact.chan_ops {
        let hit = if send {
            op.op == ChanOpKind::Send
        } else {
            op.op == ChanOpKind::Recv
        };
        if hit && op.endpoint == endpoint {
            return Some(op.line);
        }
    }
    for call in &fact.calls {
        for (i, arg) in call.args_id.iter().enumerate() {
            if arg != endpoint || i >= 16 {
                continue;
            }
            let bit = 1u16 << i;
            let hits = ctx.graph.resolve(&call.callee, file).iter().any(|&c| {
                let f = &ctx.graph.nodes[c].fact;
                if send {
                    f.param_send & bit != 0
                } else {
                    f.param_recv & bit != 0
                }
            });
            if hits {
                return Some(call.line);
            }
        }
    }
    None
}

fn channel_deadlock(ctx: &SummaryCtx, out: &mut Vec<Finding>) {
    let g = &ctx.graph;
    let mut by_name: HashMap<(usize, &str), usize> = HashMap::new();
    for (id, node) in g.nodes.iter().enumerate() {
        by_name.insert((node.file, node.fact.name.as_str()), id);
    }
    for node in g.nodes.iter() {
        if node.fact.channels.is_empty() {
            continue;
        }
        // The contexts both endpoints can land in: the creating function
        // itself plus each thread it spawns.
        let mut contexts: Vec<&FnFact> = vec![&node.fact];
        for spawn in &node.fact.spawns {
            if let Some(&c) = by_name.get(&(node.file, spawn.closure.as_str())) {
                contexts.push(&g.nodes[c].fact);
            }
        }
        let path = &g.file_paths[node.file];
        for ch in &node.fact.channels {
            // Rendezvous: send blocks until recv arrives, so both ends
            // reachable in the same context is a self-deadlock.
            if ch.kind == ChanKind::Rendezvous {
                for fact in &contexts {
                    let send = reaches_op(ctx, fact, node.file, &ch.tx, true);
                    let recv = reaches_op(ctx, fact, node.file, &ch.rx, false);
                    if let (Some(send_line), Some(_)) = (send, recv) {
                        out.push(Finding {
                            file: path.clone(),
                            line: send_line,
                            rule: "channel-deadlock",
                            message: format!(
                                "rendezvous channel `({}, {})` (sync_channel(0), \
                                 {path}:{}): send and recv are both reachable in \
                                 `{}` — the send blocks until a receiver arrives on \
                                 another thread, so this self-deadlocks",
                                ch.tx, ch.rx, ch.line, fact.name
                            ),
                            item: Some(local_name(&fact.name).to_string()),
                        });
                    }
                }
            }
            // Cross-thread send with the Result unwrapped: the receiving
            // thread exiting first (panic, early return, shutdown) turns
            // a normal disconnect into a sender panic.
            for (ci, fact) in contexts.iter().enumerate() {
                for op in &fact.chan_ops {
                    if op.op != ChanOpKind::Send || !op.unwrapped || op.endpoint != ch.tx {
                        continue;
                    }
                    let receiver_elsewhere = contexts.iter().enumerate().any(|(cj, other)| {
                        cj != ci && other.chan_ops.iter().any(|o| o.endpoint == ch.rx)
                    });
                    if receiver_elsewhere {
                        out.push(Finding {
                            file: path.clone(),
                            line: op.line,
                            rule: "channel-deadlock",
                            message: format!(
                                "`{}.send(..).unwrap()` in `{}`: the receiver `{}` \
                                 lives on another thread that can exit first, turning \
                                 shutdown into a panic — `let _ = send(..)` or match \
                                 the Err to stop cleanly",
                                ch.tx, fact.name, ch.rx
                            ),
                            item: Some(local_name(&fact.name).to_string()),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// join-leak
// ---------------------------------------------------------------------------

fn join_leak(ctx: &SummaryCtx, out: &mut Vec<Finding>) {
    for node in &ctx.graph.nodes {
        for spawn in &node.fact.spawns {
            if spawn.scoped || !spawn.leaked {
                continue;
            }
            out.push(Finding {
                file: ctx.graph.file_paths[node.file].clone(),
                line: spawn.line,
                rule: "join-leak",
                message: format!(
                    "spawned thread's JoinHandle is dropped implicitly in `{}`; its \
                     panic is lost and shutdown cannot wait for it — keep the handle \
                     and join it, or write `let _ = thread::spawn(..)` to detach \
                     explicitly",
                    node.fact.name
                ),
                item: Some(local_name(&node.fact.name).to_string()),
            });
        }
    }
}
