//! A lightweight, tolerant item/expression parser over the lexer's token
//! stream.
//!
//! The dataflow rules need more structure than a flat token stream: which
//! function a cast lives in, what a `let` binds, whether a lock guard is
//! still in scope. This module provides exactly that — a recursive-descent
//! parser producing a small AST with per-function bodies — and nothing
//! more. It is *tolerant*: anything it cannot parse degrades to
//! [`ExprKind::Unknown`] (advancing at least one token, so parsing always
//! terminates) instead of failing, which is the right trade-off for a lint
//! pass that must survive every file in the workspace.
//!
//! Deliberate approximations, shared with the rules that consume the AST:
//! operator precedence is flattened (all binary operators are parsed
//! left-associatively at one level — `as` casts and postfix calls still
//! bind tightest, which is what the cast and taint rules care about), and
//! patterns are reduced to the lowercase identifiers they bind.

use crate::lexer::{Token, TokenKind};

/// Inclusive token-index span `[start, end]`.
pub type Span = (usize, usize);

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct Ast {
    /// Function definitions with bodies, in source order. Methods are
    /// named `Type::method`.
    pub fns: Vec<FnDef>,
    /// Struct definitions with derives and fields.
    pub structs: Vec<StructDef>,
    /// Targets of `impl Drop for X`.
    pub drop_impls: Vec<String>,
}

/// One struct definition.
#[derive(Debug)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    /// Token index of the `struct` keyword (for test-span lookups).
    pub tok: usize,
    pub derives: Vec<String>,
    /// `(field_name, rendered_type)`; tuple fields have an empty name.
    pub fields: Vec<(String, String)>,
}

/// One function with a body.
#[derive(Debug)]
pub struct FnDef {
    /// `name` or `Type::name` for methods.
    pub name: String,
    pub line: u32,
    /// Token index of the `fn` keyword (for test-span lookups).
    pub tok: usize,
    /// `(param_name, rendered_type)`; `self` and pattern params omitted.
    pub params: Vec<(String, String)>,
    pub body: Block,
}

/// A `{ ... }` block.
#[derive(Debug)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    Let {
        /// The bound name when the pattern is a plain (possibly `mut`)
        /// identifier.
        name: Option<String>,
        /// Every lowercase identifier the pattern binds (destructurings).
        names: Vec<String>,
        /// Rendered type annotation, if written.
        ty: Option<String>,
        init: Option<Expr>,
        /// `let ... else { ... }` diverging block.
        else_block: Option<Block>,
        line: u32,
    },
    Expr(Expr),
}

/// One expression with its source line and token span.
#[derive(Debug)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
    pub span: Span,
}

#[derive(Debug)]
pub enum ExprKind {
    /// `a::b::c` (turbofish args skipped).
    Path(Vec<String>),
    /// Any literal token.
    Lit,
    /// `name!(args)`; the span covers the whole invocation, so literal
    /// tokens inside it can be re-scanned for format captures.
    Macro { name: String, args: Vec<Expr> },
    Call { callee: Box<Expr>, args: Vec<Expr> },
    MethodCall { recv: Box<Expr>, method: String, args: Vec<Expr> },
    Field { recv: Box<Expr>, name: String },
    Index { recv: Box<Expr>, index: Box<Expr> },
    /// `expr as ty` with the rendered target type.
    Cast { expr: Box<Expr>, ty: String },
    /// Any prefix operator (`&`, `&mut`, `*`, `!`, `-`).
    Unary { expr: Box<Expr> },
    Binary { op: String, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Plain and compound assignment.
    Assign { target: Box<Expr>, value: Box<Expr> },
    Range { lo: Option<Box<Expr>>, hi: Option<Box<Expr>> },
    If { cond: Box<Expr>, then: Block, els: Option<Box<Expr>> },
    /// The `let PAT = scrut` condition of `if let` / `while let`,
    /// reduced to the names the pattern binds.
    LetCond { names: Vec<String>, scrut: Box<Expr> },
    Match { scrut: Box<Expr>, arms: Vec<Arm> },
    Loop { body: Block },
    While { cond: Box<Expr>, body: Block },
    For { names: Vec<String>, iter: Box<Expr>, body: Block },
    BlockExpr(Block),
    Closure { body: Box<Expr> },
    /// `expr?`.
    Try { expr: Box<Expr> },
    /// Tuple or array literal.
    Tuple { items: Vec<Expr> },
    StructLit { path: String, fields: Vec<(String, Expr)> },
    Return { value: Option<Box<Expr>> },
    Break,
    Continue,
    /// Anything the parser gave up on (at least one token consumed).
    Unknown,
}

/// One match arm: the names its pattern binds and the arm body.
#[derive(Debug)]
pub struct Arm {
    pub names: Vec<String>,
    pub body: Expr,
}

/// Parses one file's token stream.
pub fn parse(tokens: &[Token]) -> Ast {
    let mut p = Parser {
        t: tokens,
        pos: 0,
        ast: Ast::default(),
        no_struct_lit: false,
        depth: 0,
    };
    p.items(tokens.len(), "");
    p.ast
}

/// Index of the token matching the opener at `open_idx` (same-text
/// counting, so only call it positioned on `open`).
pub(crate) fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.text == open {
            depth += 1;
        } else if t.text == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Expression nesting bound: beyond this the parser degrades to Unknown
/// tokens rather than risking stack overflow on pathological input.
const MAX_DEPTH: u32 = 200;

struct Parser<'t> {
    t: &'t [Token],
    pos: usize,
    ast: Ast,
    /// True while parsing `if`/`while`/`match`/`for` heads, where `Path {`
    /// is a block, not a struct literal.
    no_struct_lit: bool,
    depth: u32,
}

impl<'t> Parser<'t> {
    // -- token cursor helpers ------------------------------------------------

    fn text(&self, ahead: usize) -> &str {
        self.t.get(self.pos + ahead).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, ahead: usize) -> Option<TokenKind> {
        self.t.get(self.pos + ahead).map(|t| t.kind)
    }

    fn line_here(&self) -> u32 {
        self.t
            .get(self.pos.min(self.t.len().saturating_sub(1)))
            .map_or(1, |t| t.line)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at_ident(&self, s: &str) -> bool {
        self.kind(0) == Some(TokenKind::Ident) && self.text(0) == s
    }

    fn mk(&self, kind: ExprKind, start: usize) -> Expr {
        let end = self.pos.saturating_sub(1).max(start);
        Expr {
            kind,
            line: self.t.get(start).map_or(1, |t| t.line),
            span: (start, end),
        }
    }

    /// Skips one `#[...]` / `#![...]` attribute if positioned on `#`;
    /// returns the derive idents if it was a `#[derive(...)]`.
    fn skip_attr(&mut self) -> Vec<String> {
        if self.text(0) != "#" {
            return Vec::new();
        }
        let mut open = self.pos + 1;
        if self.text(1) == "!" {
            open += 1;
        }
        if self.t.get(open).map_or(true, |t| t.text != "[") {
            self.bump();
            return Vec::new();
        }
        let Some(end) = matching(self.t, open, "[", "]") else {
            self.pos = self.t.len();
            return Vec::new();
        };
        let body = &self.t[open + 1..end];
        let derives = if body.first().map_or(false, |t| t.text == "derive") {
            body.iter()
                .skip(1)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone())
                .collect()
        } else {
            Vec::new()
        };
        self.pos = end + 1;
        derives
    }

    // -- items ---------------------------------------------------------------

    fn items(&mut self, end: usize, prefix: &str) {
        let mut derives: Vec<String> = Vec::new();
        while self.pos < end {
            let before = self.pos;
            if self.text(0) == "#" {
                let d = self.skip_attr();
                if !d.is_empty() {
                    derives = d;
                }
                continue;
            }
            if self.kind(0) == Some(TokenKind::Ident) {
                match self.text(0) {
                    "struct" => {
                        self.struct_item(std::mem::take(&mut derives), end);
                        continue;
                    }
                    "fn" => {
                        derives.clear();
                        self.fn_item(prefix, end);
                        continue;
                    }
                    "impl" => {
                        derives.clear();
                        self.impl_item(end);
                        continue;
                    }
                    "mod" => {
                        derives.clear();
                        self.bump();
                        if self.kind(0) == Some(TokenKind::Ident) {
                            self.bump();
                        }
                        if self.text(0) == "{" {
                            let close = matching(self.t, self.pos, "{", "}")
                                .unwrap_or(self.t.len().saturating_sub(1));
                            self.bump();
                            self.items(close.min(end), prefix);
                            self.pos = close + 1;
                        } else if self.text(0) == ";" {
                            self.bump();
                        }
                        continue;
                    }
                    "enum" | "trait" | "union" | "macro_rules" => {
                        derives.clear();
                        self.skip_braced_item(end);
                        continue;
                    }
                    "const" | "static" if self.text(1) != "fn" => {
                        derives.clear();
                        self.skip_to_semi(end);
                        continue;
                    }
                    "use" | "type" | "extern" => {
                        derives.clear();
                        self.skip_to_semi(end);
                        continue;
                    }
                    _ => {}
                }
            }
            self.bump();
            if self.pos == before {
                self.bump();
            }
        }
    }

    /// Skips an item whose body is the next top-level `{...}` (or that
    /// ends at `;` first).
    fn skip_braced_item(&mut self, end: usize) {
        self.bump(); // the keyword
        while self.pos < end {
            match self.text(0) {
                "{" => {
                    let close =
                        matching(self.t, self.pos, "{", "}").unwrap_or(end.saturating_sub(1));
                    self.pos = close + 1;
                    return;
                }
                ";" => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    fn skip_to_semi(&mut self, end: usize) {
        let mut brace = 0i32;
        while self.pos < end {
            match self.text(0) {
                "{" => brace += 1,
                "}" => brace -= 1,
                ";" if brace <= 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skips a balanced `<...>` generic list if positioned on `<`.
    fn skip_generics(&mut self) {
        if self.text(0) != "<" {
            return;
        }
        let mut depth = 0i32;
        while self.pos < self.t.len() {
            match self.text(0) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                ";" | "{" => return, // damaged input: bail before the body
                _ => {}
            }
            self.bump();
        }
    }

    fn struct_item(&mut self, derives: Vec<String>, end: usize) {
        let tok = self.pos;
        let line = self.t[tok].line;
        self.bump(); // `struct`
        if self.kind(0) != Some(TokenKind::Ident) {
            return;
        }
        let name = self.text(0).to_string();
        self.bump();
        self.skip_generics();
        // Skip a where-clause up to the body.
        while self.pos < end && !matches!(self.text(0), "{" | "(" | ";") {
            self.bump();
        }
        let mut fields = Vec::new();
        match self.text(0) {
            "{" => {
                let close = matching(self.t, self.pos, "{", "}").unwrap_or(end.saturating_sub(1));
                let mut j = self.pos + 1;
                while j < close {
                    while j < close && self.t[j].text == "#" {
                        match matching(self.t, j + 1, "[", "]") {
                            Some(e) => j = e + 1,
                            None => break,
                        }
                    }
                    if self.t.get(j).map_or(false, |t| t.text == "pub") {
                        j += 1;
                        if self.t.get(j).map_or(false, |t| t.text == "(") {
                            match matching(self.t, j, "(", ")") {
                                Some(e) => j = e + 1,
                                None => break,
                            }
                        }
                    }
                    if j >= close || self.t[j].kind != TokenKind::Ident {
                        break;
                    }
                    let fname = self.t[j].text.clone();
                    j += 1;
                    if self.t.get(j).map_or(true, |t| t.text != ":") {
                        break;
                    }
                    j += 1;
                    let (ty, next) = read_type(self.t, j, close);
                    fields.push((fname, ty));
                    j = next;
                    if self.t.get(j).map_or(false, |t| t.text == ",") {
                        j += 1;
                    }
                }
                self.pos = close + 1;
            }
            "(" => {
                let close = matching(self.t, self.pos, "(", ")").unwrap_or(end.saturating_sub(1));
                let mut j = self.pos + 1;
                while j < close {
                    while j < close && self.t[j].text == "#" {
                        match matching(self.t, j + 1, "[", "]") {
                            Some(e) => j = e + 1,
                            None => break,
                        }
                    }
                    if self.t.get(j).map_or(false, |t| t.text == "pub") {
                        j += 1;
                        if self.t.get(j).map_or(false, |t| t.text == "(") {
                            match matching(self.t, j, "(", ")") {
                                Some(e) => j = e + 1,
                                None => break,
                            }
                        }
                    }
                    let (ty, next) = read_type(self.t, j, close);
                    if ty.is_empty() {
                        break;
                    }
                    fields.push((String::new(), ty));
                    j = next;
                    if self.t.get(j).map_or(false, |t| t.text == ",") {
                        j += 1;
                    }
                }
                self.pos = close + 1;
                if self.text(0) == ";" {
                    self.bump();
                }
            }
            _ => {
                if self.text(0) == ";" {
                    self.bump();
                }
            }
        }
        self.ast.structs.push(StructDef {
            name,
            line,
            tok,
            derives,
            fields,
        });
    }

    fn impl_item(&mut self, end: usize) {
        self.bump(); // `impl`
        self.skip_generics();
        let (first, saw_for) = self.impl_type_name(end);
        let type_name = if saw_for {
            self.bump(); // `for`
            let (second, _) = self.impl_type_name(end);
            if first.as_deref() == Some("Drop") {
                if let Some(t) = &second {
                    self.ast.drop_impls.push(t.clone());
                }
            }
            second
        } else {
            first
        };
        // Skip a where-clause up to the body.
        while self.pos < end && !matches!(self.text(0), "{" | ";") {
            self.bump();
        }
        if self.text(0) == "{" {
            let close = matching(self.t, self.pos, "{", "}").unwrap_or(end.saturating_sub(1));
            self.bump();
            let prefix = type_name.map_or(String::new(), |t| format!("{t}::"));
            self.items(close.min(end), &prefix);
            self.pos = close + 1;
        } else if self.text(0) == ";" {
            self.bump();
        }
    }

    /// Reads a trait/type path in an impl head, returning its last
    /// depth-0 identifier and whether the scan stopped at `for`.
    fn impl_type_name(&mut self, end: usize) -> (Option<String>, bool) {
        let mut name = None;
        let mut angle = 0i32;
        while self.pos < end {
            match self.text(0) {
                "for" if angle == 0 => return (name, true),
                "where" | "{" | ";" if angle == 0 => return (name, false),
                "<" => angle += 1,
                ">" => angle -= 1,
                _ => {
                    if angle == 0 && self.kind(0) == Some(TokenKind::Ident) {
                        name = Some(self.text(0).to_string());
                    }
                }
            }
            self.bump();
        }
        (name, false)
    }

    fn fn_item(&mut self, prefix: &str, end: usize) {
        let tok = self.pos;
        let line = self.t[tok].line;
        self.bump(); // `fn`
        if self.kind(0) != Some(TokenKind::Ident) {
            return;
        }
        let name = format!("{prefix}{}", self.text(0));
        self.bump();
        self.skip_generics();
        let mut params = Vec::new();
        if self.text(0) == "(" {
            let close = matching(self.t, self.pos, "(", ")").unwrap_or(end.saturating_sub(1));
            let mut j = self.pos + 1;
            while j < close {
                while j < close && self.t[j].text == "#" {
                    match matching(self.t, j + 1, "[", "]") {
                        Some(e) => j = e + 1,
                        None => break,
                    }
                }
                while j < close && matches!(self.t[j].text.as_str(), "mut" | "ref") {
                    j += 1;
                }
                let named = j + 1 < close
                    && self.t[j].kind == TokenKind::Ident
                    && self.t[j + 1].text == ":";
                if named {
                    let pname = self.t[j].text.clone();
                    let (ty, next) = read_type(self.t, j + 2, close);
                    params.push((pname, ty));
                    j = next;
                } else {
                    // `self` forms and pattern params: skip to the comma.
                    let (_, next) = read_type(self.t, j, close);
                    j = next;
                }
                if self.t.get(j).map_or(false, |t| t.text == ",") {
                    j += 1;
                }
            }
            self.pos = close + 1;
        }
        // Return type / where clause up to the body (or `;` for a
        // bodyless trait-method signature).
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while self.pos < end {
            match self.text(0) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "{" if paren == 0 && bracket == 0 => break,
                ";" if paren == 0 && bracket == 0 => {
                    self.bump();
                    return;
                }
                _ => {}
            }
            self.bump();
        }
        if self.text(0) != "{" {
            return;
        }
        let body = self.block();
        self.ast.fns.push(FnDef {
            name,
            line,
            tok,
            params,
            body,
        });
    }

    // -- statements ----------------------------------------------------------

    /// Parses a `{ ... }` block; the caller must be positioned on `{`.
    fn block(&mut self) -> Block {
        let start = self.pos;
        let close = matching(self.t, self.pos, "{", "}").unwrap_or(self.t.len());
        self.bump(); // `{`
        let saved = std::mem::replace(&mut self.no_struct_lit, false);
        let mut stmts = Vec::new();
        while self.pos < close {
            let before = self.pos;
            if self.text(0) == ";" {
                self.bump();
                continue;
            }
            if self.text(0) == "#" {
                self.skip_attr();
                continue;
            }
            if self.kind(0) == Some(TokenKind::Ident) {
                match self.text(0) {
                    "let" => {
                        stmts.push(self.let_stmt(close));
                        continue;
                    }
                    "fn" => {
                        self.fn_item("", close);
                        if self.pos == before {
                            self.bump();
                        }
                        continue;
                    }
                    "struct" => {
                        self.struct_item(Vec::new(), close);
                        if self.pos == before {
                            self.bump();
                        }
                        continue;
                    }
                    "impl" => {
                        self.impl_item(close);
                        if self.pos == before {
                            self.bump();
                        }
                        continue;
                    }
                    "use" | "const" | "static" | "type" => {
                        self.skip_to_semi(close);
                        if self.pos == before {
                            self.bump();
                        }
                        continue;
                    }
                    "mod" | "trait" | "enum" | "union" | "macro_rules" => {
                        self.skip_braced_item(close);
                        if self.pos == before {
                            self.bump();
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            let e = self.expr();
            stmts.push(Stmt::Expr(e));
            if self.text(0) == ";" {
                self.bump();
            }
            if self.pos == before {
                self.bump();
            }
        }
        self.pos = close.saturating_add(1).min(self.t.len());
        self.no_struct_lit = saved;
        Block {
            stmts,
            span: (start, close.min(self.t.len().saturating_sub(1))),
        }
    }

    fn let_stmt(&mut self, end: usize) -> Stmt {
        let line = self.line_here();
        self.bump(); // `let`
        let pat_start = self.pos;
        let mut depth = 0i32;
        while self.pos < end {
            match self.text(0) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ":" | "=" | ";" if depth <= 0 => break,
                _ => {}
            }
            self.bump();
        }
        let pat = &self.t[pat_start..self.pos];
        let names = pattern_names(pat);
        let name = match pat {
            [only] if only.kind == TokenKind::Ident => Some(only.text.clone()),
            [m, only] if m.text == "mut" && only.kind == TokenKind::Ident => {
                Some(only.text.clone())
            }
            _ => None,
        };
        let mut ty = None;
        if self.text(0) == ":" {
            self.bump();
            let ty_start = self.pos;
            let mut angle = 0i32;
            let mut bracket = 0i32;
            let mut paren = 0i32;
            while self.pos < end {
                match self.text(0) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "=" | ";" if angle <= 0 && bracket <= 0 && paren <= 0 => break,
                    _ => {}
                }
                self.bump();
            }
            ty = Some(render_tokens(&self.t[ty_start..self.pos]));
        }
        let mut init = None;
        if self.text(0) == "=" {
            self.bump();
            init = Some(self.expr());
        }
        let mut else_block = None;
        if self.at_ident("else") {
            self.bump();
            if self.text(0) == "{" {
                else_block = Some(self.block());
            }
        }
        if self.text(0) == ";" {
            self.bump();
        }
        Stmt::Let {
            name,
            names,
            ty,
            init,
            else_block,
            line,
        }
    }

    // -- expressions ---------------------------------------------------------

    fn expr(&mut self) -> Expr {
        let start = self.pos;
        let lhs = self.binary();
        if self.text(0) == "=" {
            self.bump();
            let value = self.expr();
            return self.mk(
                ExprKind::Assign {
                    target: Box::new(lhs),
                    value: Box::new(value),
                },
                start,
            );
        }
        lhs
    }

    /// Parses an `if`/`while`/`match`/`for` head expression, where `{`
    /// always starts the body, never a struct literal.
    fn head_expr(&mut self) -> Expr {
        let saved = std::mem::replace(&mut self.no_struct_lit, true);
        let e = self.expr();
        self.no_struct_lit = saved;
        e
    }

    fn binary(&mut self) -> Expr {
        let start = self.pos;
        let mut lhs = self.unary();
        loop {
            let t0 = self.text(0);
            // Ranges: the lexer leaves `..` as two `.` tokens.
            if t0 == "." && self.text(1) == "." {
                self.bump();
                self.bump();
                if self.text(0) == "=" {
                    self.bump();
                }
                let hi = if self.starts_expr() {
                    Some(Box::new(self.unary()))
                } else {
                    None
                };
                lhs = self.mk(
                    ExprKind::Range {
                        lo: Some(Box::new(lhs)),
                        hi,
                    },
                    start,
                );
                continue;
            }
            // Compound assignment: the lexer leaves `+=` etc. as two tokens.
            if matches!(t0, "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|") && self.text(1) == "=" {
                self.bump();
                self.bump();
                let value = self.expr();
                return self.mk(
                    ExprKind::Assign {
                        target: Box::new(lhs),
                        value: Box::new(value),
                    },
                    start,
                );
            }
            let is_op = matches!(
                t0,
                "+" | "-"
                    | "*"
                    | "/"
                    | "%"
                    | "^"
                    | "&"
                    | "|"
                    | "<"
                    | ">"
                    | "<="
                    | ">="
                    | "=="
                    | "!="
                    | "&&"
                    | "||"
            );
            if !is_op {
                break;
            }
            let op = t0.to_string();
            self.bump();
            let rhs = self.unary();
            lhs = self.mk(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                start,
            );
        }
        lhs
    }

    /// True when the current token can begin an expression.
    fn starts_expr(&self) -> bool {
        if self.pos >= self.t.len() {
            return false;
        }
        !matches!(
            self.text(0),
            ")" | "]" | "}" | "," | ";" | "=>" | "=" | "{"
        ) && !matches!(self.text(0), "else" | "in" | "as")
    }

    fn unary(&mut self) -> Expr {
        if self.depth >= MAX_DEPTH {
            let start = self.pos;
            if self.pos < self.t.len() {
                self.bump();
            }
            return self.mk(ExprKind::Unknown, start);
        }
        self.depth += 1;
        let e = self.unary_inner();
        self.depth -= 1;
        e
    }

    fn unary_inner(&mut self) -> Expr {
        let start = self.pos;
        match self.text(0) {
            "&" => {
                self.bump();
                if self.at_ident("mut") {
                    self.bump();
                }
                let inner = self.unary();
                return self.mk(
                    ExprKind::Unary {
                        expr: Box::new(inner),
                    },
                    start,
                );
            }
            "*" | "!" | "-" => {
                self.bump();
                let inner = self.unary();
                return self.mk(
                    ExprKind::Unary {
                        expr: Box::new(inner),
                    },
                    start,
                );
            }
            "||" => {
                // Zero-parameter closure.
                self.bump();
                let body = self.expr();
                return self.mk(
                    ExprKind::Closure {
                        body: Box::new(body),
                    },
                    start,
                );
            }
            "|" => {
                // Closure parameter list: scan to the closing `|`.
                self.bump();
                let mut depth = 0i32;
                while self.pos < self.t.len() {
                    match self.text(0) {
                        "(" | "[" | "<" => depth += 1,
                        ")" | "]" | ">" => depth -= 1,
                        "|" if depth <= 0 => {
                            self.bump();
                            break;
                        }
                        _ => {}
                    }
                    self.bump();
                }
                let saved = std::mem::replace(&mut self.no_struct_lit, false);
                let body = self.expr();
                self.no_struct_lit = saved;
                return self.mk(
                    ExprKind::Closure {
                        body: Box::new(body),
                    },
                    start,
                );
            }
            _ => {}
        }
        if self.at_ident("move") {
            self.bump();
            return self.unary_inner();
        }
        let primary = self.primary();
        self.postfix(primary, start)
    }

    fn primary(&mut self) -> Expr {
        let start = self.pos;
        let Some(kind) = self.kind(0) else {
            return self.mk(ExprKind::Unknown, start);
        };
        match kind {
            TokenKind::Literal => {
                self.bump();
                self.mk(ExprKind::Lit, start)
            }
            TokenKind::Lifetime => {
                // Loop label: `'outer: loop { ... }`.
                self.bump();
                if self.text(0) == ":" {
                    self.bump();
                }
                self.primary()
            }
            TokenKind::Punct => match self.text(0) {
                "(" => {
                    self.bump();
                    let mut items = self.expr_list(")");
                    // A one-element list is a parenthesized expression:
                    // grouping is transparent, only the span widens.
                    let mut e = if items.len() == 1 {
                        match items.pop() {
                            Some(inner) => inner,
                            None => self.mk(ExprKind::Unknown, start),
                        }
                    } else {
                        self.mk(ExprKind::Tuple { items }, start)
                    };
                    e.span = (start, self.pos.saturating_sub(1).max(start));
                    e
                }
                "[" => {
                    self.bump();
                    let items = self.expr_list("]");
                    self.mk(ExprKind::Tuple { items }, start)
                }
                "{" => {
                    let b = self.block();
                    self.mk(ExprKind::BlockExpr(b), start)
                }
                _ => {
                    // A closer (`)`, `}`, `,`, ...) never starts an
                    // expression: report Unknown without consuming so
                    // enclosing list parsers stay synchronized.
                    if matches!(self.text(0), ")" | "]" | "}" | "," | ";" | "=>") {
                        return self.mk(ExprKind::Unknown, start);
                    }
                    self.bump();
                    self.mk(ExprKind::Unknown, start)
                }
            },
            TokenKind::Ident => match self.text(0) {
                "if" => self.if_expr(),
                "while" => {
                    self.bump();
                    let cond = if self.at_ident("let") {
                        self.let_cond()
                    } else {
                        self.head_expr()
                    };
                    let body = if self.text(0) == "{" {
                        self.block()
                    } else {
                        Block {
                            stmts: Vec::new(),
                            span: (self.pos, self.pos),
                        }
                    };
                    self.mk(
                        ExprKind::While {
                            cond: Box::new(cond),
                            body,
                        },
                        start,
                    )
                }
                "loop" => {
                    self.bump();
                    let body = if self.text(0) == "{" {
                        self.block()
                    } else {
                        Block {
                            stmts: Vec::new(),
                            span: (self.pos, self.pos),
                        }
                    };
                    self.mk(ExprKind::Loop { body }, start)
                }
                "for" => {
                    self.bump();
                    let pat_start = self.pos;
                    let mut depth = 0i32;
                    while self.pos < self.t.len() {
                        match self.text(0) {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "in" if depth <= 0 => break,
                            "{" => break, // damaged input
                            _ => {}
                        }
                        self.bump();
                    }
                    let names = pattern_names(&self.t[pat_start..self.pos]);
                    if self.at_ident("in") {
                        self.bump();
                    }
                    let iter = self.head_expr();
                    let body = if self.text(0) == "{" {
                        self.block()
                    } else {
                        Block {
                            stmts: Vec::new(),
                            span: (self.pos, self.pos),
                        }
                    };
                    self.mk(
                        ExprKind::For {
                            names,
                            iter: Box::new(iter),
                            body,
                        },
                        start,
                    )
                }
                "match" => self.match_expr(),
                "return" => {
                    self.bump();
                    let value = if self.starts_expr() {
                        Some(Box::new(self.expr()))
                    } else {
                        None
                    };
                    self.mk(ExprKind::Return { value }, start)
                }
                "break" => {
                    self.bump();
                    if self.kind(0) == Some(TokenKind::Lifetime) {
                        self.bump();
                    }
                    if self.starts_expr() {
                        // `break value`: the value is consumed (kept in the
                        // token span) but not modeled.
                        let _ = self.expr();
                    }
                    self.mk(ExprKind::Break, start)
                }
                "continue" => {
                    self.bump();
                    if self.kind(0) == Some(TokenKind::Lifetime) {
                        self.bump();
                    }
                    self.mk(ExprKind::Continue, start)
                }
                "unsafe" | "async" => {
                    self.bump();
                    if self.text(0) == "{" {
                        let b = self.block();
                        self.mk(ExprKind::BlockExpr(b), start)
                    } else {
                        self.mk(ExprKind::Unknown, start)
                    }
                }
                _ => self.path_expr(),
            },
        }
    }

    fn if_expr(&mut self) -> Expr {
        let start = self.pos;
        self.bump(); // `if`
        let cond = if self.at_ident("let") {
            self.let_cond()
        } else {
            self.head_expr()
        };
        let then = if self.text(0) == "{" {
            self.block()
        } else {
            Block {
                stmts: Vec::new(),
                span: (self.pos, self.pos),
            }
        };
        let mut els = None;
        if self.at_ident("else") {
            self.bump();
            if self.at_ident("if") {
                els = Some(Box::new(self.if_expr()));
            } else if self.text(0) == "{" {
                let b_start = self.pos;
                let b = self.block();
                els = Some(Box::new(self.mk(ExprKind::BlockExpr(b), b_start)));
            }
        }
        self.mk(
            ExprKind::If {
                cond: Box::new(cond),
                then,
                els,
            },
            start,
        )
    }

    /// Parses the `let PAT = scrut` condition of `if let` / `while let`;
    /// the caller is positioned on `let`.
    fn let_cond(&mut self) -> Expr {
        let start = self.pos;
        self.bump(); // `let`
        let pat_start = self.pos;
        let mut depth = 0i32;
        while self.pos < self.t.len() {
            match self.text(0) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth <= 0 => break,
                _ => {}
            }
            self.bump();
        }
        let names = pattern_names(&self.t[pat_start..self.pos]);
        if self.text(0) == "=" {
            self.bump();
        }
        let scrut = self.head_expr();
        self.mk(
            ExprKind::LetCond {
                names,
                scrut: Box::new(scrut),
            },
            start,
        )
    }

    fn match_expr(&mut self) -> Expr {
        let start = self.pos;
        self.bump(); // `match`
        let scrut = self.head_expr();
        let mut arms = Vec::new();
        if self.text(0) == "{" {
            let close = matching(self.t, self.pos, "{", "}").unwrap_or(self.t.len());
            self.bump();
            while self.pos < close {
                let before = self.pos;
                if self.text(0) == "#" {
                    self.skip_attr();
                    continue;
                }
                if self.text(0) == "," {
                    self.bump();
                    continue;
                }
                // Pattern (with optional guard) up to `=>`.
                let pat_start = self.pos;
                let mut depth = 0i32;
                while self.pos < close {
                    match self.text(0) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=>" if depth <= 0 => break,
                        _ => {}
                    }
                    self.bump();
                }
                let names = pattern_names(&self.t[pat_start..self.pos]);
                if self.text(0) == "=>" {
                    self.bump();
                }
                let saved = std::mem::replace(&mut self.no_struct_lit, false);
                let body = self.expr();
                self.no_struct_lit = saved;
                arms.push(Arm { names, body });
                if self.text(0) == "," {
                    self.bump();
                }
                if self.pos == before {
                    self.bump();
                }
            }
            self.pos = close.saturating_add(1).min(self.t.len());
        }
        self.mk(
            ExprKind::Match {
                scrut: Box::new(scrut),
                arms,
            },
            start,
        )
    }

    fn path_expr(&mut self) -> Expr {
        let start = self.pos;
        let mut segs = vec![self.text(0).to_string()];
        self.bump();
        while self.text(0) == "::" {
            if self.kind(1) == Some(TokenKind::Ident) {
                segs.push(self.text(1).to_string());
                self.bump();
                self.bump();
            } else if self.text(1) == "<" {
                // Turbofish: skip the generic arguments.
                self.bump();
                self.skip_generics();
            } else {
                self.bump();
                break;
            }
        }
        // Macro invocation.
        if self.text(0) == "!" && matches!(self.text(1), "(" | "[" | "{") {
            self.bump(); // `!`
            let name = segs.last().cloned().unwrap_or_default();
            let (open, closer) = match self.text(0) {
                "(" => ("(", ")"),
                "[" => ("[", "]"),
                _ => ("{", "}"),
            };
            let args = if open == "{" {
                // Brace macros (`macro_rules` bodies, `vec!{}`) are opaque.
                let close = matching(self.t, self.pos, "{", "}").unwrap_or(self.t.len());
                self.pos = close.saturating_add(1).min(self.t.len());
                Vec::new()
            } else {
                self.bump();
                self.expr_list(closer)
            };
            return self.mk(ExprKind::Macro { name, args }, start);
        }
        // Struct literal.
        let ctor_like = segs
            .last()
            .map_or(false, |s| s.chars().next().map_or(false, |c| c.is_uppercase()));
        if self.text(0) == "{" && !self.no_struct_lit && ctor_like {
            let close = matching(self.t, self.pos, "{", "}").unwrap_or(self.t.len());
            self.bump();
            let saved = std::mem::replace(&mut self.no_struct_lit, false);
            let mut fields = Vec::new();
            while self.pos < close {
                let before = self.pos;
                if self.text(0) == "#" {
                    self.skip_attr();
                    continue;
                }
                if self.text(0) == "," {
                    self.bump();
                    continue;
                }
                if self.text(0) == "." && self.text(1) == "." {
                    // `..base` functional update.
                    self.bump();
                    self.bump();
                    let _ = self.expr();
                    continue;
                }
                if self.kind(0) == Some(TokenKind::Ident) {
                    let fname = self.text(0).to_string();
                    let fline = self.line_here();
                    let fstart = self.pos;
                    self.bump();
                    let value = if self.text(0) == ":" {
                        self.bump();
                        self.expr()
                    } else {
                        // Shorthand `Struct { field }`.
                        Expr {
                            kind: ExprKind::Path(vec![fname.clone()]),
                            line: fline,
                            span: (fstart, fstart),
                        }
                    };
                    fields.push((fname, value));
                } else if self.pos == before {
                    self.bump();
                }
            }
            self.pos = close.saturating_add(1).min(self.t.len());
            self.no_struct_lit = saved;
            return self.mk(
                ExprKind::StructLit {
                    path: segs.join("::"),
                    fields,
                },
                start,
            );
        }
        self.mk(ExprKind::Path(segs), start)
    }

    fn postfix(&mut self, mut e: Expr, start: usize) -> Expr {
        loop {
            match self.text(0) {
                "." if self.text(1) != "." => {
                    if self.kind(1) == Some(TokenKind::Ident) {
                        let name = self.text(1).to_string();
                        if name == "await" {
                            self.bump();
                            self.bump();
                            continue;
                        }
                        // Method call when `(` (optionally after a
                        // turbofish) follows; field access otherwise.
                        let mut probe = self.pos + 2;
                        if self.t.get(probe).map_or(false, |t| t.text == "::") {
                            if self.t.get(probe + 1).map_or(false, |t| t.text == "<") {
                                if let Some(close) =
                                    angle_match(self.t, probe + 1)
                                {
                                    probe = close + 1;
                                }
                            }
                        }
                        if self.t.get(probe).map_or(false, |t| t.text == "(") {
                            self.pos = probe + 1;
                            let args = self.expr_list(")");
                            e = self.mk(
                                ExprKind::MethodCall {
                                    recv: Box::new(e),
                                    method: name,
                                    args,
                                },
                                start,
                            );
                        } else {
                            self.bump();
                            self.bump();
                            e = self.mk(
                                ExprKind::Field {
                                    recv: Box::new(e),
                                    name,
                                },
                                start,
                            );
                        }
                        continue;
                    }
                    if self.kind(1) == Some(TokenKind::Literal) {
                        // Tuple index (`pair.0`).
                        let name = self.text(1).to_string();
                        self.bump();
                        self.bump();
                        e = self.mk(
                            ExprKind::Field {
                                recv: Box::new(e),
                                name,
                            },
                            start,
                        );
                        continue;
                    }
                    break;
                }
                "?" => {
                    self.bump();
                    e = self.mk(ExprKind::Try { expr: Box::new(e) }, start);
                }
                "(" => {
                    self.bump();
                    let args = self.expr_list(")");
                    e = self.mk(
                        ExprKind::Call {
                            callee: Box::new(e),
                            args,
                        },
                        start,
                    );
                }
                "[" => {
                    self.bump();
                    let saved = std::mem::replace(&mut self.no_struct_lit, false);
                    let index = self.expr();
                    self.no_struct_lit = saved;
                    if self.text(0) == "]" {
                        self.bump();
                    }
                    e = self.mk(
                        ExprKind::Index {
                            recv: Box::new(e),
                            index: Box::new(index),
                        },
                        start,
                    );
                }
                "as" if self.kind(0) == Some(TokenKind::Ident) => {
                    self.bump();
                    let ty_start = self.pos;
                    // A cast target: path segments with optional generics,
                    // leading `&`/lifetimes tolerated.
                    while matches!(self.text(0), "&" | "mut")
                        || self.kind(0) == Some(TokenKind::Lifetime)
                    {
                        self.bump();
                    }
                    while self.kind(0) == Some(TokenKind::Ident)
                        && !matches!(self.text(0), "as" | "else" | "in" | "if" | "match")
                    {
                        self.bump();
                        if self.text(0) == "::" {
                            self.bump();
                            continue;
                        }
                        if self.text(0) == "<" {
                            self.skip_generics();
                        }
                        break;
                    }
                    let ty = render_tokens(&self.t[ty_start..self.pos]);
                    e = self.mk(
                        ExprKind::Cast {
                            expr: Box::new(e),
                            ty,
                        },
                        start,
                    );
                }
                _ => break,
            }
        }
        e
    }

    /// Parses a comma-separated expression list, consuming the closer.
    fn expr_list(&mut self, closer: &str) -> Vec<Expr> {
        let saved = std::mem::replace(&mut self.no_struct_lit, false);
        let mut items = Vec::new();
        while self.pos < self.t.len() && self.text(0) != closer {
            let before = self.pos;
            if matches!(self.text(0), "," | ";") {
                self.bump();
                continue;
            }
            items.push(self.expr());
            if self.pos == before {
                self.bump();
            }
        }
        if self.text(0) == closer {
            self.bump();
        }
        self.no_struct_lit = saved;
        items
    }
}

/// Matches a `<...>` list opened at `open_idx`, honoring nesting.
fn angle_match(tokens: &[Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        match t.text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            ";" | "{" => return None,
            _ => {}
        }
    }
    None
}

/// Reads a type starting at `start`, stopping at a top-level `,` or at
/// `end`. Returns the rendered type and the index of the stopping token.
pub(crate) fn read_type(tokens: &[Token], start: usize, end: usize) -> (String, usize) {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut ty = String::new();
    let mut j = start;
    while j < end {
        let text = tokens[j].text.as_str();
        match text {
            "<" => angle += 1,
            ">" => angle -= 1,
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "," if angle == 0 && paren == 0 && bracket == 0 => break,
            _ => {}
        }
        ty.push_str(text);
        j += 1;
    }
    (ty, j)
}

/// Concatenates token texts (the rendering used for types).
fn render_tokens(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        out.push_str(&t.text);
    }
    out
}

/// The lowercase identifiers a pattern binds: plain bindings survive,
/// constructors (`Some`, `ErrorKind::...`), keywords, and path prefixes
/// (`io` in `io::ErrorKind`) are dropped.
fn pattern_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let lower_start = t
            .text
            .chars()
            .next()
            .map_or(false, |c| c.is_lowercase() || c == '_');
        if !lower_start || t.text == "_" {
            continue;
        }
        if matches!(t.text.as_str(), "mut" | "ref" | "box" | "if" | "in" | "true" | "false") {
            continue;
        }
        // `io` in `io::ErrorKind::Interrupted` is a path, not a binding.
        if tokens.get(i + 1).map_or(false, |n| n.text == "::") {
            continue;
        }
        // `name:` inside a struct pattern renames the binding; keep the
        // field name out when it is immediately re-bound.
        if tokens.get(i + 1).map_or(false, |n| n.text == ":")
            && tokens
                .get(i + 2)
                .map_or(false, |n| n.kind == TokenKind::Ident)
        {
            continue;
        }
        if !names.contains(&t.text) {
            names.push(t.text.clone());
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src).tokens)
    }

    fn only_fn(ast: &Ast) -> &FnDef {
        assert_eq!(ast.fns.len(), 1, "{:?}", ast.fns);
        &ast.fns[0]
    }

    #[test]
    fn fn_with_params_and_body() {
        let ast = parse_src("fn f(a: usize, total_bytes: u64) -> u64 { let x = a; x }");
        let f = only_fn(&ast);
        assert_eq!(f.name, "f");
        assert_eq!(
            f.params,
            vec![
                ("a".to_string(), "usize".to_string()),
                ("total_bytes".to_string(), "u64".to_string())
            ]
        );
        assert_eq!(f.body.stmts.len(), 2);
        match &f.body.stmts[0] {
            Stmt::Let { name, init, .. } => {
                assert_eq!(name.as_deref(), Some("x"));
                assert!(init.is_some());
            }
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn methods_are_qualified() {
        let ast = parse_src("struct S { n: u32 }\nimpl S { fn get(&self) -> u32 { self.n } }");
        assert_eq!(ast.fns[0].name, "S::get");
        assert_eq!(ast.structs[0].fields, vec![("n".to_string(), "u32".to_string())]);
    }

    #[test]
    fn drop_impls_recorded() {
        let ast = parse_src("impl Drop for Keys { fn drop(&mut self) {} }");
        assert_eq!(ast.drop_impls, vec!["Keys".to_string()]);
        assert_eq!(ast.fns[0].name, "Keys::drop");
    }

    #[test]
    fn casts_and_method_calls() {
        let ast = parse_src("fn f(v: Vec<u8>) { let n = v.len() as u32; }");
        let f = only_fn(&ast);
        let Stmt::Let { init: Some(e), .. } = &f.body.stmts[0] else {
            panic!("let expected");
        };
        let ExprKind::Cast { expr, ty } = &e.kind else {
            panic!("cast expected, got {:?}", e.kind);
        };
        assert_eq!(ty, "u32");
        assert!(matches!(&expr.kind, ExprKind::MethodCall { method, .. } if method == "len"));
    }

    #[test]
    fn loops_and_conditions() {
        let ast = parse_src(
            "fn f() { loop { break; } while x < 10 { x += 1; } for i in 0..n { use_it(i); } }",
        );
        let f = only_fn(&ast);
        assert_eq!(f.body.stmts.len(), 3);
        assert!(matches!(
            &f.body.stmts[0],
            Stmt::Expr(Expr { kind: ExprKind::Loop { .. }, .. })
        ));
        assert!(matches!(
            &f.body.stmts[1],
            Stmt::Expr(Expr { kind: ExprKind::While { .. }, .. })
        ));
        let Stmt::Expr(Expr { kind: ExprKind::For { names, .. }, .. }) = &f.body.stmts[2] else {
            panic!("for expected");
        };
        assert_eq!(names, &vec!["i".to_string()]);
    }

    #[test]
    fn if_let_binds_pattern_names() {
        let ast = parse_src("fn f() { if let Some(k) = lookup() { use_it(k); } }");
        let f = only_fn(&ast);
        let Stmt::Expr(Expr { kind: ExprKind::If { cond, .. }, .. }) = &f.body.stmts[0] else {
            panic!("if expected");
        };
        let ExprKind::LetCond { names, .. } = &cond.kind else {
            panic!("let-cond expected, got {:?}", cond.kind);
        };
        assert_eq!(names, &vec!["k".to_string()]);
    }

    #[test]
    fn match_arms_bind_names() {
        let ast = parse_src(
            "fn f() { match r { Ok(v) => use_it(v), Err(e) if e.fatal() => die(e), _ => {} } }",
        );
        let f = only_fn(&ast);
        let Stmt::Expr(Expr { kind: ExprKind::Match { arms, .. }, .. }) = &f.body.stmts[0] else {
            panic!("match expected");
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].names, vec!["v".to_string()]);
        assert!(arms[1].names.contains(&"e".to_string()));
    }

    #[test]
    fn struct_literal_vs_block() {
        // In a head position `{` opens the body, not a literal.
        let ast = parse_src("fn f() { if ready { go(); } let c = Config { depth: 3 }; }");
        let f = only_fn(&ast);
        assert_eq!(f.body.stmts.len(), 2);
        let Stmt::Let { init: Some(e), .. } = &f.body.stmts[1] else {
            panic!("let expected");
        };
        let ExprKind::StructLit { path, fields } = &e.kind else {
            panic!("struct literal expected, got {:?}", e.kind);
        };
        assert_eq!(path, "Config");
        assert_eq!(fields[0].0, "depth");
    }

    #[test]
    fn macro_args_are_parsed() {
        let ast = parse_src("fn f() { println!(\"{} ok\", value); }");
        let f = only_fn(&ast);
        let Stmt::Expr(Expr { kind: ExprKind::Macro { name, args }, .. }) = &f.body.stmts[0]
        else {
            panic!("macro expected");
        };
        assert_eq!(name, "println");
        assert_eq!(args.len(), 2);
        assert!(matches!(&args[1].kind, ExprKind::Path(p) if p == &vec!["value".to_string()]));
    }

    #[test]
    fn tolerates_garbage_and_terminates() {
        // Unbalanced and nonsense input must not hang or panic.
        let _ = parse_src("fn f( { ) } ] => :::: fn fn struct 7 let let");
        let _ = parse_src("fn f() { a.b.(c }");
        let _ = parse_src("impl { fn g() { match } }");
    }

    #[test]
    fn nested_items_are_found() {
        let ast = parse_src(
            "mod inner { pub struct Keys { words: Vec<u32> } impl Keys { fn rot(&self) {} } }",
        );
        assert_eq!(ast.structs.len(), 1);
        assert_eq!(ast.fns[0].name, "Keys::rot");
    }

    #[test]
    fn closures_and_try() {
        let ast = parse_src("fn f() -> R { let g = |x: u32| x + 1; let v = io()?; Ok(v) }");
        let f = only_fn(&ast);
        let Stmt::Let { init: Some(e), .. } = &f.body.stmts[0] else {
            panic!()
        };
        assert!(matches!(&e.kind, ExprKind::Closure { .. }));
        let Stmt::Let { init: Some(e), .. } = &f.body.stmts[1] else {
            panic!()
        };
        assert!(matches!(&e.kind, ExprKind::Try { .. }));
    }
}
