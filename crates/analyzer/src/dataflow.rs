//! Dataflow rules over the [`crate::ast`] layer. The per-function
//! tracking is intra-procedural; call sites consult the workspace
//! function summaries ([`crate::summaries`]) through [`InterCtx`], so
//! taint follows values across function boundaries when the callee
//! resolves in-workspace and falls back to the v2 lexical heuristics
//! when it does not.
//!
//! Each rule here encodes a bug class this repository actually shipped and
//! later fixed:
//!
//! * `lossy-len-cast` — PR 4's CBDF writer silently truncated a record
//!   length with `as u32`; the fix was `u32::try_from`. The rule tracks
//!   length-derived values (names like `len`/`offset`/`total_bytes`,
//!   `.len()` results) through `let` bindings and arithmetic, and fires
//!   when one reaches a narrowing `as` cast with no checked conversion or
//!   mask in between.
//! * `secret-taint` — the lexical `secret-print` rule only sees secret
//!   *names*. This rule follows the value: a read of a secret-named field
//!   (or a call to a secret-named constructor) taints the binding, and the
//!   taint survives renames (`let material = self.master_key;`) all the
//!   way to a format/log sink.
//! * `unbounded-loop` — PR 3's scan loops honored cancel/deadline only
//!   once per caller window. In scan/pipeline/service code paths, a `loop`
//!   (or `while true`) with no `break`/`return`/`?` exit and no consult of
//!   a cancel/deadline/shutdown control is reported.
//! * `untimed-io` — PR 4's dumpd dropped blocking reads on
//!   `ErrorKind::Interrupted` and originally configured no read timeout.
//!   In service code, a socket read must live in a function that handles
//!   `Interrupted`, in a file that calls `set_read_timeout`.

use std::collections::HashMap;

use crate::ast::{Block, Expr, ExprKind, FnDef, Stmt};
use crate::callgraph::CallKey;
use crate::diag::Finding;
use crate::engine::{Analysis, FileKind, PRINT_MACROS};
use crate::lexer::TokenKind;
use crate::secrets;
use crate::summaries::{FnSummary, SummaryCtx};

/// Segments that mark a value as a length/offset/size (after
/// [`secrets::segments`] normalization, which lowercases and strips
/// plurals via [`secrets`]' singular rule at the comparison site).
pub(crate) const LEN_SEGS: &[&str] = &[
    "len", "length", "size", "count", "offset", "total", "remaining", "capacity", "limit",
];

/// Identifier segments that count as consulting a cancellation /
/// deadline / shutdown control inside a loop.
const CONTROL_SEGS: &[&str] = &[
    "tick",
    "cancel",
    "cancelled",
    "canceled",
    "deadline",
    "timeout",
    "shutdown",
    "stop",
    "stopped",
    "control",
    "ctrl",
    "interrupt",
    "interrupted",
    "running",
    "exit",
];

/// Path fragments that put a file in scope for `unbounded-loop`.
const LOOP_SCOPED_PATHS: &[&str] = &["service", "pipeline", "dumpd", "daemon", "server", "scan"];

/// Path fragments that put a file in scope for `untimed-io` (and for the
/// interprocedural `panic-reachability` / `blocking-in-worker` rules).
pub(crate) const IO_SCOPED_PATHS: &[&str] = &["service", "dumpd", "daemon", "server"];

/// Socket-ish receiver segments for `untimed-io`.
pub(crate) const SOCKET_SEGS: &[&str] = &[
    "stream",
    "socket",
    "sock",
    "conn",
    "connection",
    "tcp",
    "peer",
    "client",
    "listener",
];

/// Blocking read methods audited by `untimed-io`.
pub(crate) const READ_METHODS: &[&str] = &[
    "read",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
];

/// Files whose narrowing casts belong to `truncating-cast`, not
/// `lossy-len-cast` — the rules stay disjoint so one cast is never
/// reported twice. Shared with the summary extraction's `param_narrowed`
/// generation.
pub(crate) const LEN_CAST_EXEMPT: &[&str] =
    &["crates/dram/src/mapping.rs", "crates/dram/src/geometry.rs"];

pub(crate) fn seg_matches(ident: &str, set: &[&str]) -> bool {
    secrets::segments(ident)
        .iter()
        .any(|s| set.contains(&s.as_str()) || set.contains(&secrets::singular(s)))
}

fn fn_in_test(a: &Analysis, f: &FnDef) -> bool {
    a.in_test.get(f.tok).copied().unwrap_or(false)
}

/// Interprocedural context for one file's check pass: the workspace
/// summary table, plus which file the rules are looking at (call
/// resolution is caller-relative). `None` means summaries are
/// unavailable — single-file unit tests — and every rule degrades to its
/// v2 intra-procedural behavior.
pub(crate) struct InterCtx<'c> {
    pub(crate) ctx: &'c SummaryCtx,
    pub(crate) file: usize,
}

impl InterCtx<'_> {
    /// Summary of a `path(..)` call target, if it resolves in-workspace.
    fn path_summary(&self, segs: &[String]) -> Option<FnSummary> {
        self.ctx
            .call_summary(&CallKey::Path(segs.to_vec()), self.file)
    }

    /// Summary of a `recv.method(..)` call target, if it resolves.
    fn method_summary(&self, method: &str) -> Option<FnSummary> {
        self.ctx
            .call_summary(&CallKey::Method(method.to_string()), self.file)
    }
}

/// Iterates the set bit positions of a summary parameter mask.
fn mask_bits(mask: u16) -> impl Iterator<Item = usize> {
    (0..16).filter(move |i| mask & (1 << i) != 0)
}

/// Runs every dataflow rule that applies to `a`, appending raw findings.
pub(crate) fn run(a: &Analysis, ic: Option<&InterCtx>, findings: &mut Vec<Finding>) {
    rule_lossy_len_cast(a, ic, findings);
    rule_secret_taint(a, ic, findings);
    rule_unbounded_loop(a, findings);
    rule_untimed_io(a, findings);
}

// ---------------------------------------------------------------------------
// lossy-len-cast
// ---------------------------------------------------------------------------

/// What the length analysis knows about one expression or binding.
#[derive(Debug, Clone, Copy, Default)]
struct LenTaint {
    /// Derived from a length/offset/size.
    length: bool,
    /// Passed through a checked conversion, mask, or min-clamp.
    checked: bool,
    /// Known-wide integer (`u64`/`u128` declared type), so `as usize`
    /// can truncate on 32-bit targets.
    wide: bool,
}

impl LenTaint {
    fn join(self, other: LenTaint) -> LenTaint {
        LenTaint {
            length: self.length || other.length,
            checked: self.checked || other.checked,
            wide: self.wide || other.wide,
        }
    }
}

fn ty_is_wide(ty: &str) -> bool {
    ty.contains("u64") || ty.contains("u128") || ty.contains("i64") || ty.contains("i128")
}

/// Length environment: per-variable taints plus the interprocedural
/// context for summary lookups at call sites.
struct LenEnv<'i> {
    vars: HashMap<String, LenTaint>,
    ic: Option<&'i InterCtx<'i>>,
}

fn rule_lossy_len_cast(a: &Analysis, ic: Option<&InterCtx>, findings: &mut Vec<Finding>) {
    if !matches!(a.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    // The DRAM address-arithmetic files are `truncating-cast`'s territory;
    // keeping the rules disjoint avoids double reports on one cast.
    if LEN_CAST_EXEMPT.contains(&a.path.as_str()) {
        return;
    }
    for f in &a.ast.fns {
        if fn_in_test(a, f) {
            continue;
        }
        let mut env = LenEnv {
            vars: HashMap::new(),
            ic,
        };
        for (name, ty) in &f.params {
            let t = LenTaint {
                length: seg_matches(name, LEN_SEGS),
                checked: false,
                wide: ty_is_wide(ty),
            };
            if t.length || t.wide {
                env.vars.insert(name.clone(), t);
            }
        }
        len_scan_block(a, &f.body, &mut env, findings);
    }
}

fn len_scan_block(
    a: &Analysis,
    b: &Block,
    env: &mut LenEnv,
    findings: &mut Vec<Finding>,
) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                else_block,
                ..
            } => {
                if let Some(e) = init {
                    len_scan_expr(a, e, env, findings);
                    if let Some(n) = name {
                        let mut t = len_taint_of(e, env);
                        if ty.as_deref().map_or(false, ty_is_wide) {
                            t.wide = true;
                        }
                        if t.length || t.wide {
                            env.vars.insert(n.clone(), t);
                        } else {
                            env.vars.remove(n);
                        }
                    }
                } else if let (Some(n), Some(t)) = (name, ty.as_deref()) {
                    if ty_is_wide(t) {
                        env.vars.insert(
                            n.clone(),
                            LenTaint {
                                length: seg_matches(n, LEN_SEGS),
                                checked: false,
                                wide: true,
                            },
                        );
                    }
                }
                if let Some(eb) = else_block {
                    len_scan_block(a, eb, env, findings);
                }
            }
            Stmt::Expr(e) => len_scan_expr(a, e, env, findings),
        }
    }
}

/// Walks an expression checking every narrowing cast site against the
/// environment, recursing into nested blocks.
fn len_scan_expr(
    a: &Analysis,
    e: &Expr,
    env: &mut LenEnv,
    findings: &mut Vec<Finding>,
) {
    if let ExprKind::Cast { expr, ty } = &e.kind {
        let t = len_taint_of(expr, env);
        let narrow = matches!(ty.as_str(), "u8" | "u16" | "u32" | "i8" | "i16" | "i32");
        let platform = matches!(ty.as_str(), "usize" | "isize") && t.wide;
        if t.length && !t.checked && (narrow || platform) {
            let ident = first_ident_in(a, expr).unwrap_or_else(|| "<expr>".to_string());
            findings.push(Finding {
                file: a.path.clone(),
                line: e.line,
                rule: "lossy-len-cast",
                message: format!(
                    "`as {ty}` on length-derived value `{ident}` can silently truncate; \
                     use `{ty}::try_from` (or mask/clamp first)"
                ),
                item: Some(ident),
            });
        }
    }
    // Helper-mediated truncation: the callee's summary says it narrows
    // this parameter with an unchecked `as` cast, so passing a raw length
    // is the same bug as casting it here.
    let summary_site = match &e.kind {
        ExprKind::Call { callee, args } => match &callee.kind {
            ExprKind::Path(segs) => env
                .ic
                .and_then(|ic| ic.path_summary(segs))
                .map(|s| (s, args, segs.join("::"))),
            _ => None,
        },
        ExprKind::MethodCall { method, args, .. } => env
            .ic
            .and_then(|ic| ic.method_summary(method))
            .map(|s| (s, args, method.clone())),
        _ => None,
    };
    if let Some((sum, args, callee)) = summary_site {
        for i in mask_bits(sum.param_narrowed) {
            let Some(arg) = args.get(i) else { continue };
            let t = len_taint_of(arg, env);
            if t.length && !t.checked {
                let ident = first_ident_in(a, arg).unwrap_or_else(|| "<expr>".to_string());
                findings.push(Finding {
                    file: a.path.clone(),
                    line: e.line,
                    rule: "lossy-len-cast",
                    message: format!(
                        "length-derived value `{ident}` is narrowed by an unchecked `as` \
                         cast inside `{callee}`; convert with `try_from` before the call"
                    ),
                    item: Some(ident),
                });
            }
        }
    }
    for_each_child(e, env, &mut |a2, child, env2, f2| {
        len_scan_expr(a2, child, env2, f2)
    }, a, findings);
}

/// The length taint of an expression under `env`. Pure — does not report.
fn len_taint_of(e: &Expr, env: &LenEnv) -> LenTaint {
    match &e.kind {
        ExprKind::Path(segs) => {
            if let [only] = segs.as_slice() {
                if let Some(t) = env.vars.get(only) {
                    return *t;
                }
            }
            LenTaint {
                length: segs.last().map_or(false, |s| seg_matches(s, LEN_SEGS)),
                ..LenTaint::default()
            }
        }
        ExprKind::Field { name, .. } => LenTaint {
            length: seg_matches(name, LEN_SEGS),
            ..LenTaint::default()
        },
        ExprKind::MethodCall { recv, method, args } => match method.as_str() {
            "len" | "capacity" => LenTaint {
                length: true,
                ..LenTaint::default()
            },
            "min" | "clamp" | "try_into" | "rem_euclid" => LenTaint {
                checked: true,
                ..len_taint_of(recv, env)
            },
            m if m.starts_with("checked_") || m.starts_with("saturating_") => LenTaint {
                checked: true,
                ..len_taint_of(recv, env)
            },
            _ => {
                if let Some(sum) = env.ic.and_then(|ic| ic.method_summary(method)) {
                    // Resolved in-workspace: the summary says whether the
                    // return value is length-derived.
                    let mut t = LenTaint {
                        length: sum.returns_len,
                        ..LenTaint::default()
                    };
                    for i in mask_bits(sum.param_to_ret_len) {
                        if let Some(arg) = args.get(i) {
                            t = t.join(len_taint_of(arg, env));
                        }
                    }
                    t
                } else {
                    len_taint_of(recv, env)
                }
            }
        },
        ExprKind::Call { callee, args } => {
            if let ExprKind::Path(segs) = &callee.kind {
                match segs.last().map(String::as_str) {
                    Some("try_from") => {
                        return LenTaint {
                            checked: true,
                            ..args.first().map_or(LenTaint::default(), |a| {
                                len_taint_of(a, env)
                            })
                        }
                    }
                    Some("min") => {
                        let mut t = LenTaint::default();
                        for arg in args {
                            t = t.join(len_taint_of(arg, env));
                        }
                        return LenTaint { checked: true, ..t };
                    }
                    _ => {}
                }
                if let Some(sum) = env.ic.and_then(|ic| ic.path_summary(segs)) {
                    let mut t = LenTaint {
                        length: sum.returns_len,
                        ..LenTaint::default()
                    };
                    for i in mask_bits(sum.param_to_ret_len) {
                        if let Some(arg) = args.get(i) {
                            t = t.join(len_taint_of(arg, env));
                        }
                    }
                    return t;
                }
            }
            LenTaint::default()
        }
        ExprKind::Binary { op, lhs, rhs } => match op.as_str() {
            "&" | "%" => LenTaint {
                checked: true,
                ..len_taint_of(lhs, env).join(len_taint_of(rhs, env))
            },
            "-" => {
                let (l, r) = (len_taint_of(lhs, env), len_taint_of(rhs, env));
                let mut t = l.join(r);
                // The difference of two wide (u64) values is address/offset
                // arithmetic producing a bounded span; the bug class this
                // rule hunts is direct `len()`-to-narrow truncation, which
                // lives in `usize` lengths, not u64 spans.
                if l.wide && r.wide {
                    t.checked = true;
                }
                t
            }
            "+" | "*" | "/" | "^" | "|" => {
                len_taint_of(lhs, env).join(len_taint_of(rhs, env))
            }
            _ => LenTaint::default(), // comparisons yield bool
        },
        ExprKind::Unary { expr } | ExprKind::Try { expr } => len_taint_of(expr, env),
        ExprKind::Cast { expr, ty } => {
            let mut t = len_taint_of(expr, env);
            if ty_is_wide(ty) {
                t.wide = true;
            }
            t
        }
        ExprKind::Index { recv, .. } => len_taint_of(recv, env),
        _ => LenTaint::default(),
    }
}

// ---------------------------------------------------------------------------
// secret-taint
// ---------------------------------------------------------------------------

/// Taint environment: var name -> originating secret identifier, plus
/// the interprocedural context for summary lookups at call sites.
struct TaintEnv<'i> {
    vars: HashMap<String, String>,
    ic: Option<&'i InterCtx<'i>>,
}

fn rule_secret_taint(a: &Analysis, ic: Option<&InterCtx>, findings: &mut Vec<Finding>) {
    if !matches!(a.kind, FileKind::Lib | FileKind::Bin | FileKind::Example) {
        return;
    }
    for f in &a.ast.fns {
        if fn_in_test(a, f) {
            continue;
        }
        let mut tainted = TaintEnv {
            vars: HashMap::new(),
            ic,
        };
        for (name, _) in &f.params {
            // A parameter that is itself secret-named is `secret-print`'s
            // domain; taint tracking starts at renames and field reads.
            let _ = name;
        }
        taint_scan_block(a, &f.body, &mut tainted, findings);
    }
}

fn taint_scan_block(
    a: &Analysis,
    b: &Block,
    tainted: &mut TaintEnv,
    findings: &mut Vec<Finding>,
) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let {
                name,
                names,
                init,
                else_block,
                ..
            } => {
                if let Some(e) = init {
                    taint_scan_expr(a, e, tainted, findings);
                    if let Some(src) = secret_source_of(e, tainted) {
                        if let Some(n) = name {
                            tainted.vars.insert(n.clone(), src);
                        } else {
                            for n in names {
                                tainted.vars.insert(n.clone(), src.clone());
                            }
                        }
                    } else if let Some(n) = name {
                        tainted.vars.remove(n);
                    }
                }
                if let Some(eb) = else_block {
                    taint_scan_block(a, eb, tainted, findings);
                }
            }
            Stmt::Expr(e) => taint_scan_expr(a, e, tainted, findings),
        }
    }
}

fn taint_scan_expr(
    a: &Analysis,
    e: &Expr,
    tainted: &mut TaintEnv,
    findings: &mut Vec<Finding>,
) {
    match &e.kind {
        ExprKind::Macro { name, args } if PRINT_MACROS.contains(&name.as_str()) => {
            check_taint_sink(a, e, name, args, tainted, findings);
            for arg in args {
                taint_scan_expr(a, arg, tainted, findings);
            }
            return;
        }
        ExprKind::If { cond, .. } => {
            if let ExprKind::LetCond { names, scrut } = &cond.kind {
                if let Some(src) = secret_source_of(scrut, tainted) {
                    for n in names {
                        tainted.vars.insert(n.clone(), src.clone());
                    }
                }
            }
        }
        ExprKind::While { cond, .. } => {
            if let ExprKind::LetCond { names, scrut } = &cond.kind {
                if let Some(src) = secret_source_of(scrut, tainted) {
                    for n in names {
                        tainted.vars.insert(n.clone(), src.clone());
                    }
                }
            }
        }
        ExprKind::For { names, iter, .. } => {
            if let Some(src) = secret_source_of(iter, tainted) {
                for n in names {
                    tainted.vars.insert(n.clone(), src.clone());
                }
            }
        }
        ExprKind::Match { scrut, arms } => {
            if let Some(src) = secret_source_of(scrut, tainted) {
                for arm in arms {
                    for n in &arm.names {
                        tainted.vars.insert(n.clone(), src.clone());
                    }
                }
            }
        }
        ExprKind::Assign { target, value } => {
            if let Some(src) = secret_source_of(value, tainted) {
                if let ExprKind::Path(segs) = &target.kind {
                    if let [only] = segs.as_slice() {
                        tainted.vars.insert(only.clone(), src);
                    }
                }
            }
        }
        // A call whose callee summary says "this parameter reaches a
        // print/format sink" is itself a sink for tainted arguments.
        ExprKind::Call { callee, args } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if let Some(sum) = tainted.ic.and_then(|ic| ic.path_summary(segs)) {
                    check_summary_sink(a, e, &segs.join("::"), sum, args, tainted, findings);
                }
            }
        }
        ExprKind::MethodCall { method, args, .. } => {
            if let Some(sum) = tainted.ic.and_then(|ic| ic.method_summary(method)) {
                check_summary_sink(a, e, method, sum, args, tainted, findings);
            }
        }
        _ => {}
    }
    for_each_child(e, tainted, &mut |a2, child, env2, f2| {
        taint_scan_expr(a2, child, env2, f2)
    }, a, findings);
}

/// Reports key material flowing into a workspace callee whose summary
/// marks the receiving parameter as sink-reaching.
fn check_summary_sink(
    a: &Analysis,
    call: &Expr,
    callee: &str,
    sum: FnSummary,
    args: &[Expr],
    env: &TaintEnv,
    findings: &mut Vec<Finding>,
) {
    for i in mask_bits(sum.param_to_sink) {
        let Some(arg) = args.get(i) else { continue };
        let Some(src) = secret_source_of(arg, env) else {
            continue;
        };
        findings.push(Finding {
            file: a.path.clone(),
            line: call.line,
            rule: "secret-taint",
            message: format!(
                "key material from `{src}` flows into `{callee}`, which formats or \
                 logs that argument; secrets must not cross into print sinks"
            ),
            item: Some(src),
        });
        return; // one finding per call site is enough
    }
}

/// Reports a print-macro sink whose arguments (or `{name}` captures)
/// carry propagated secret taint. Macros that lexically mention a secret
/// identifier are `secret-print`'s findings and are skipped here.
fn check_taint_sink(
    a: &Analysis,
    mac: &Expr,
    macro_name: &str,
    args: &[Expr],
    tainted: &TaintEnv,
    findings: &mut Vec<Finding>,
) {
    let (start, end) = mac.span;
    let span_toks = &a.tokens[start.min(a.tokens.len())..(end + 1).min(a.tokens.len())];
    let lexically_secret = span_toks.iter().any(|t| {
        t.kind == TokenKind::Ident
            && secrets::is_secret_ident(&t.text)
            && !matches!(t.text.as_str(), "write" | "writeln")
    });
    if lexically_secret {
        return;
    }
    let mut hit: Option<(String, String)> = None; // (var, source secret)
    for arg in args {
        if let Some((var, src)) = tainted_var_in(arg, &tainted.vars) {
            hit = Some((var, src));
            break;
        }
    }
    if hit.is_none() {
        for t in span_toks {
            if t.kind != TokenKind::Literal || !t.text.contains('{') {
                continue;
            }
            for cap in crate::engine::format_captures(&t.text) {
                if let Some(src) = tainted.vars.get(&cap) {
                    hit = Some((cap, src.clone()));
                    break;
                }
            }
            if hit.is_some() {
                break;
            }
        }
    }
    if let Some((var, src)) = hit {
        findings.push(Finding {
            file: a.path.clone(),
            line: mac.line,
            rule: "secret-taint",
            message: format!(
                "`{var}` carries key material from `{src}` and reaches `{macro_name}!`; \
                 secrets must not be formatted, even renamed"
            ),
            item: Some(var),
        });
    }
}

/// A call is a secret *source* only when the secret noun is the *last*
/// word of the callee name: `derive_master_key()` and `keystream()`
/// return key material, while `seed_from_u64()` and
/// `zero_fill_key_extraction()` return RNGs / result summaries that
/// merely mention one.
pub(crate) fn callee_returns_secret(name: &str) -> bool {
    secrets::segments(name)
        .last()
        .map_or(false, |last| secrets::is_secret_ident(last))
}

/// The secret source an expression's value derives from, if any. When a
/// call resolves to a workspace function, its computed summary replaces
/// the v2 lexical callee-name guess; unresolved externs keep the
/// heuristic.
fn secret_source_of(e: &Expr, tainted: &TaintEnv) -> Option<String> {
    match &e.kind {
        ExprKind::Path(segs) => {
            let last = segs.last()?;
            tainted.vars.get(last).cloned().or_else(|| {
                // A multi-segment path read (`self::KEY`? rare) stays out;
                // bare secret idents are secret-print's domain, but reads
                // *through* them (handled by Field) do taint.
                None
            })
        }
        ExprKind::Field { name, recv } => {
            if secrets::is_secret_ident(name) {
                Some(name.clone())
            } else {
                secret_source_of(recv, tainted)
            }
        }
        ExprKind::MethodCall { recv, method, args } => {
            if matches!(method.as_str(), "len" | "is_empty" | "capacity" | "count") {
                return None;
            }
            if let Some(sum) = tainted.ic.and_then(|ic| ic.method_summary(method)) {
                if sum.returns_secret {
                    return Some(method.clone());
                }
                if let Some(src) = mask_bits(sum.param_to_ret)
                    .find_map(|i| args.get(i).and_then(|a| secret_source_of(a, tainted)))
                {
                    return Some(src);
                }
                // `self -> return` flow is not in the parameter mask; keep
                // the receiver fallback for resolved methods too.
                return secret_source_of(recv, tainted);
            }
            if callee_returns_secret(method) {
                return Some(method.clone());
            }
            secret_source_of(recv, tainted)
                .or_else(|| args.iter().find_map(|a| secret_source_of(a, tainted)))
        }
        ExprKind::Call { callee, args } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if let Some(sum) = tainted.ic.and_then(|ic| ic.path_summary(segs)) {
                    // Resolved in-workspace: the summary is authoritative.
                    if sum.returns_secret {
                        return segs.last().cloned();
                    }
                    return mask_bits(sum.param_to_ret)
                        .find_map(|i| args.get(i).and_then(|a| secret_source_of(a, tainted)));
                }
                if let Some(last) = segs.last() {
                    if callee_returns_secret(last) {
                        return Some(last.clone());
                    }
                }
            }
            args.iter().find_map(|a| secret_source_of(a, tainted))
        }
        ExprKind::Index { recv, .. } => secret_source_of(recv, tainted),
        ExprKind::Unary { expr } | ExprKind::Try { expr } => secret_source_of(expr, tainted),
        ExprKind::Cast { expr, .. } => secret_source_of(expr, tainted),
        ExprKind::Binary { op, lhs, rhs } => {
            // A comparison yields a one-bit bool, not key material; secret
            // comparisons themselves are `const-time`'s territory.
            if matches!(op.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||") {
                return None;
            }
            secret_source_of(lhs, tainted).or_else(|| secret_source_of(rhs, tainted))
        }
        ExprKind::Tuple { items } => items.iter().find_map(|i| secret_source_of(i, tainted)),
        ExprKind::StructLit { fields, .. } => {
            fields.iter().find_map(|(_, v)| secret_source_of(v, tainted))
        }
        _ => None,
    }
}

/// A tainted variable referenced by a macro argument, if any.
fn tainted_var_in(e: &Expr, tainted: &HashMap<String, String>) -> Option<(String, String)> {
    match &e.kind {
        ExprKind::Path(segs) => {
            let last = segs.last()?;
            tainted.get(last).map(|src| (last.clone(), src.clone()))
        }
        ExprKind::Field { recv, .. } | ExprKind::Index { recv, .. } => {
            tainted_var_in(recv, tainted)
        }
        ExprKind::MethodCall { recv, method, args } => {
            if matches!(method.as_str(), "len" | "is_empty" | "capacity" | "count") {
                return None;
            }
            tainted_var_in(recv, tainted)
                .or_else(|| args.iter().find_map(|a| tainted_var_in(a, tainted)))
        }
        ExprKind::Unary { expr } | ExprKind::Try { expr } => tainted_var_in(expr, tainted),
        ExprKind::Cast { expr, .. } => tainted_var_in(expr, tainted),
        ExprKind::Binary { lhs, rhs, .. } => {
            tainted_var_in(lhs, tainted).or_else(|| tainted_var_in(rhs, tainted))
        }
        ExprKind::Call { args, .. } | ExprKind::Tuple { items: args } => {
            args.iter().find_map(|a| tainted_var_in(a, tainted))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// unbounded-loop
// ---------------------------------------------------------------------------

fn rule_unbounded_loop(a: &Analysis, findings: &mut Vec<Finding>) {
    if !matches!(a.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    if !LOOP_SCOPED_PATHS.iter().any(|p| a.path.contains(p)) {
        return;
    }
    for f in &a.ast.fns {
        if fn_in_test(a, f) {
            continue;
        }
        let mut exprs: Vec<&Expr> = Vec::new();
        collect_exprs_in_block(&f.body, &mut exprs);
        for e in exprs {
            let body_span = match &e.kind {
                ExprKind::Loop { .. } => e.span,
                ExprKind::While { cond, .. } if cond_is_literal_true(a, cond) => e.span,
                _ => continue,
            };
            let toks = &a.tokens[body_span.0..(body_span.1 + 1).min(a.tokens.len())];
            let has_exit = toks.iter().any(|t| {
                (t.kind == TokenKind::Ident && matches!(t.text.as_str(), "break" | "return"))
                    || (t.kind == TokenKind::Punct && t.text == "?")
            });
            let consults_control = toks.iter().any(|t| {
                t.kind == TokenKind::Ident && seg_matches(&t.text, CONTROL_SEGS)
            });
            if !has_exit && !consults_control {
                findings.push(Finding {
                    file: a.path.clone(),
                    line: e.line,
                    rule: "unbounded-loop",
                    message: format!(
                        "infinite loop in `{}` has no exit and never consults a \
                         cancel/deadline/shutdown control",
                        f.name
                    ),
                    item: Some(f.name.clone()),
                });
            }
        }
    }
}

fn cond_is_literal_true(a: &Analysis, cond: &Expr) -> bool {
    matches!(cond.kind, ExprKind::Lit)
        && a.tokens
            .get(cond.span.0)
            .map_or(false, |t| t.text == "true")
}

// ---------------------------------------------------------------------------
// untimed-io
// ---------------------------------------------------------------------------

fn rule_untimed_io(a: &Analysis, findings: &mut Vec<Finding>) {
    if !matches!(a.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    if !IO_SCOPED_PATHS.iter().any(|p| a.path.contains(p)) {
        return;
    }
    let file_sets_timeout = a
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "set_read_timeout");
    for f in &a.ast.fns {
        if fn_in_test(a, f) {
            continue;
        }
        let mut exprs: Vec<&Expr> = Vec::new();
        collect_exprs_in_block(&f.body, &mut exprs);
        let mut socket_read: Option<&Expr> = None;
        for e in &exprs {
            if let ExprKind::MethodCall { recv, method, .. } = &e.kind {
                if READ_METHODS.contains(&method.as_str()) && receiver_is_socket(recv) {
                    socket_read = Some(e);
                    break;
                }
            }
        }
        let Some(read_expr) = socket_read else {
            continue;
        };
        let body = &a.tokens[f.body.span.0..(f.body.span.1 + 1).min(a.tokens.len())];
        let handles_interrupted = body
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "Interrupted");
        if !handles_interrupted {
            findings.push(Finding {
                file: a.path.clone(),
                line: read_expr.line,
                rule: "untimed-io",
                message: format!(
                    "socket read in `{}` does not retry on `ErrorKind::Interrupted`; a \
                     timer signal will drop the connection",
                    f.name
                ),
                item: Some(f.name.clone()),
            });
        }
        if !file_sets_timeout {
            findings.push(Finding {
                file: a.path.clone(),
                line: read_expr.line,
                rule: "untimed-io",
                message: format!(
                    "socket read in `{}` but this file never calls `set_read_timeout`; a \
                     stalled peer blocks the service forever",
                    f.name
                ),
                item: Some(f.name.clone()),
            });
        }
    }
}

pub(crate) fn receiver_is_socket(recv: &Expr) -> bool {
    match &recv.kind {
        ExprKind::Path(segs) => segs.last().map_or(false, |s| seg_matches(s, SOCKET_SEGS)),
        ExprKind::Field { name, .. } => seg_matches(name, SOCKET_SEGS),
        ExprKind::Unary { expr } | ExprKind::Try { expr } => receiver_is_socket(expr),
        ExprKind::MethodCall { recv, method, .. } => {
            // `stream.by_ref()`, `conn.get_mut()`, `stream.lock()` ...
            let _ = method;
            receiver_is_socket(recv)
        }
        ExprKind::Call { args, .. } => args.first().map_or(false, receiver_is_socket),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Shared expression walking
// ---------------------------------------------------------------------------

/// Collects every expression in a block, recursing through nested blocks.
pub(crate) fn collect_exprs_in_block<'a>(b: &'a Block, out: &mut Vec<&'a Expr>) {
    for stmt in &b.stmts {
        match stmt {
            Stmt::Let {
                init, else_block, ..
            } => {
                if let Some(e) = init {
                    collect_exprs(e, out);
                }
                if let Some(eb) = else_block {
                    collect_exprs_in_block(eb, out);
                }
            }
            Stmt::Expr(e) => collect_exprs(e, out),
        }
    }
}

pub(crate) fn collect_exprs<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    out.push(e);
    match &e.kind {
        ExprKind::Macro { args, .. } | ExprKind::Tuple { items: args } => {
            for a in args {
                collect_exprs(a, out);
            }
        }
        ExprKind::Call { callee, args } => {
            collect_exprs(callee, out);
            for a in args {
                collect_exprs(a, out);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            collect_exprs(recv, out);
            for a in args {
                collect_exprs(a, out);
            }
        }
        ExprKind::Field { recv, .. } => collect_exprs(recv, out),
        ExprKind::Index { recv, index } => {
            collect_exprs(recv, out);
            collect_exprs(index, out);
        }
        ExprKind::Cast { expr, .. }
        | ExprKind::Unary { expr }
        | ExprKind::Try { expr }
        | ExprKind::Closure { body: expr } => collect_exprs(expr, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_exprs(lhs, out);
            collect_exprs(rhs, out);
        }
        ExprKind::Assign { target, value } => {
            collect_exprs(target, out);
            collect_exprs(value, out);
        }
        ExprKind::Range { lo, hi } => {
            if let Some(l) = lo {
                collect_exprs(l, out);
            }
            if let Some(h) = hi {
                collect_exprs(h, out);
            }
        }
        ExprKind::If { cond, then, els } => {
            collect_exprs(cond, out);
            collect_exprs_in_block(then, out);
            if let Some(e2) = els {
                collect_exprs(e2, out);
            }
        }
        ExprKind::LetCond { scrut, .. } => collect_exprs(scrut, out),
        ExprKind::Match { scrut, arms } => {
            collect_exprs(scrut, out);
            for arm in arms {
                collect_exprs(&arm.body, out);
            }
        }
        ExprKind::Loop { body } => collect_exprs_in_block(body, out),
        ExprKind::While { cond, body } => {
            collect_exprs(cond, out);
            collect_exprs_in_block(body, out);
        }
        ExprKind::For { iter, body, .. } => {
            collect_exprs(iter, out);
            collect_exprs_in_block(body, out);
        }
        ExprKind::BlockExpr(b) => collect_exprs_in_block(b, out),
        ExprKind::StructLit { fields, .. } => {
            for (_, v) in fields {
                collect_exprs(v, out);
            }
        }
        ExprKind::Return { value } => {
            if let Some(v) = value {
                collect_exprs(v, out);
            }
        }
        ExprKind::Path(_)
        | ExprKind::Lit
        | ExprKind::Break
        | ExprKind::Continue
        | ExprKind::Unknown => {}
    }
}

/// Recurses one level into `e`'s children with an environment-threading
/// callback, entering nested blocks statement-by-statement so `let`
/// bindings inside them update the environment in source order.
fn for_each_child<'a, Env>(
    e: &'a Expr,
    env: &mut Env,
    f: &mut dyn FnMut(&Analysis, &'a Expr, &mut Env, &mut Vec<Finding>),
    a: &Analysis,
    findings: &mut Vec<Finding>,
) where
    Env: BlockScan<'a>,
{
    match &e.kind {
        ExprKind::Macro { args, .. } | ExprKind::Tuple { items: args } => {
            for arg in args {
                f(a, arg, env, findings);
            }
        }
        ExprKind::Call { callee, args } => {
            f(a, callee, env, findings);
            for arg in args {
                f(a, arg, env, findings);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            f(a, recv, env, findings);
            for arg in args {
                f(a, arg, env, findings);
            }
        }
        ExprKind::Field { recv, .. } => f(a, recv, env, findings),
        ExprKind::Index { recv, index } => {
            f(a, recv, env, findings);
            f(a, index, env, findings);
        }
        ExprKind::Cast { expr, .. }
        | ExprKind::Unary { expr }
        | ExprKind::Try { expr }
        | ExprKind::Closure { body: expr } => f(a, expr, env, findings),
        ExprKind::Binary { lhs, rhs, .. } => {
            f(a, lhs, env, findings);
            f(a, rhs, env, findings);
        }
        ExprKind::Assign { target, value } => {
            f(a, target, env, findings);
            f(a, value, env, findings);
        }
        ExprKind::Range { lo, hi } => {
            if let Some(l) = lo {
                f(a, l, env, findings);
            }
            if let Some(h) = hi {
                f(a, h, env, findings);
            }
        }
        ExprKind::If { cond, then, els } => {
            f(a, cond, env, findings);
            env.scan_block(a, then, findings);
            if let Some(e2) = els {
                f(a, e2, env, findings);
            }
        }
        ExprKind::LetCond { scrut, .. } => f(a, scrut, env, findings),
        ExprKind::Match { scrut, arms } => {
            f(a, scrut, env, findings);
            for arm in arms {
                f(a, &arm.body, env, findings);
            }
        }
        ExprKind::Loop { body } => env.scan_block(a, body, findings),
        ExprKind::While { cond, body } => {
            f(a, cond, env, findings);
            env.scan_block(a, body, findings);
        }
        ExprKind::For { iter, body, .. } => {
            f(a, iter, env, findings);
            env.scan_block(a, body, findings);
        }
        ExprKind::BlockExpr(b) => env.scan_block(a, b, findings),
        ExprKind::StructLit { fields, .. } => {
            for (_, v) in fields {
                f(a, v, env, findings);
            }
        }
        ExprKind::Return { value } => {
            if let Some(v) = value {
                f(a, v, env, findings);
            }
        }
        ExprKind::Path(_)
        | ExprKind::Lit
        | ExprKind::Break
        | ExprKind::Continue
        | ExprKind::Unknown => {}
    }
}

/// How an environment enters a nested block (so `let` statements inside
/// it keep updating the environment).
trait BlockScan<'a>: Sized {
    fn scan_block(&mut self, a: &Analysis, b: &'a Block, findings: &mut Vec<Finding>);
}

impl<'a, 'i> BlockScan<'a> for LenEnv<'i> {
    fn scan_block(&mut self, a: &Analysis, b: &'a Block, findings: &mut Vec<Finding>) {
        len_scan_block(a, b, self, findings);
    }
}

impl<'a, 'i> BlockScan<'a> for TaintEnv<'i> {
    fn scan_block(&mut self, a: &Analysis, b: &'a Block, findings: &mut Vec<Finding>) {
        taint_scan_block(a, b, self, findings);
    }
}

/// First identifier token inside an expression's span (for messages).
fn first_ident_in(a: &Analysis, e: &Expr) -> Option<String> {
    let (start, end) = e.span;
    a.tokens[start.min(a.tokens.len())..(end + 1).min(a.tokens.len())]
        .iter()
        .find(|t| {
            t.kind == TokenKind::Ident
                && !matches!(t.text.as_str(), "as" | "self" | "mut" | "ref")
        })
        .map(|t| t.text.clone())
}
