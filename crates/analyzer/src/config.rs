//! `lint.toml` allowlist: a tiny TOML-subset parser (std only).
//!
//! The file is a sequence of `[[allow]]` tables with string-valued entries:
//!
//! ```toml
//! [[allow]]
//! rule = "secret-debug"
//! path = "crates/core/src/litmus.rs"
//! item = "CandidateKey"          # optional: scope to one struct/ident
//! reason = "attacker-side output: recovered keys are the deliverable"
//! ```
//!
//! `rule` and `path` select findings (`path` is a prefix match, so a
//! directory path covers a whole crate); `item`, when present, further
//! restricts the entry to findings about that named item. `reason` is
//! mandatory — an allowlist without rationale rots.

use crate::diag::RULE_IDS;

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id this entry silences, or `"*"` for any rule.
    pub rule: String,
    /// Workspace-relative path prefix the entry applies to.
    pub path: String,
    /// Optional item (struct or identifier name) restriction.
    pub item: Option<String>,
    /// Mandatory justification.
    pub reason: String,
    /// 1-based line of the entry's `[[allow]]` header in `lint.toml`
    /// (0 for entries built in code), used by stale-allow reporting.
    pub line: u32,
}

impl AllowEntry {
    /// True when this entry matches (and would silence) the finding.
    pub fn matches(&self, rule: &str, file: &str, item: Option<&str>) -> bool {
        (self.rule == "*" || self.rule == rule)
            && file.starts_with(self.path.as_str())
            && self.item.as_deref().map_or(true, |want| item == Some(want))
    }
}

/// Parsed allowlist configuration.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Allow entries in file order.
    pub allows: Vec<AllowEntry>,
}

impl LintConfig {
    /// Parses the `lint.toml` subset. Returns a descriptive error naming
    /// the offending line on malformed input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut allows = Vec::new();
        let mut current: Option<PartialEntry> = None;
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_toml_comment(raw_line).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(partial) = current.take() {
                    allows.push(partial.finish()?);
                }
                current = Some(PartialEntry {
                    line: lineno as u32,
                    ..PartialEntry::default()
                });
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "lint.toml:{lineno}: unknown table `{line}` (only [[allow]] is supported)"
                ));
            }
            let (name, value) = line
                .split_once('=')
                .ok_or_else(|| format!("lint.toml:{lineno}: expected `name = \"value\"`"))?;
            let name = name.trim();
            let value = parse_toml_string(value.trim())
                .ok_or_else(|| format!("lint.toml:{lineno}: value must be a quoted string"))?;
            let entry = current
                .as_mut()
                .ok_or_else(|| format!("lint.toml:{lineno}: entry outside [[allow]] table"))?;
            match name {
                "rule" => {
                    if value != "*" && !RULE_IDS.contains(&value.as_str()) {
                        return Err(format!("lint.toml:{lineno}: unknown rule `{value}`"));
                    }
                    entry.rule = Some(value);
                }
                "path" => entry.path = Some(value),
                "item" => entry.item = Some(value),
                "reason" => entry.reason = Some(value),
                other => {
                    return Err(format!("lint.toml:{lineno}: unknown field `{other}`"));
                }
            }
        }
        if let Some(partial) = current.take() {
            allows.push(partial.finish()?);
        }
        Ok(Self { allows })
    }

    /// True when `entry`-style matching silences a finding with the given
    /// rule, file, and item.
    pub fn allows_finding(&self, rule: &str, file: &str, item: Option<&str>) -> bool {
        self.allows.iter().any(|a| a.matches(rule, file, item))
    }
}

#[derive(Debug, Default)]
struct PartialEntry {
    rule: Option<String>,
    path: Option<String>,
    item: Option<String>,
    reason: Option<String>,
    line: u32,
}

impl PartialEntry {
    fn finish(self) -> Result<AllowEntry, String> {
        let rule = self.rule.ok_or("lint.toml: [[allow]] entry missing `rule`")?;
        let path = self.path.ok_or("lint.toml: [[allow]] entry missing `path`")?;
        let reason = self
            .reason
            .filter(|r| !r.trim().is_empty())
            .ok_or_else(|| {
                format!("lint.toml: [[allow]] entry for rule `{rule}` missing a `reason`")
            })?;
        Ok(AllowEntry {
            rule,
            path,
            item: self.item,
            reason,
            line: self.line,
        })
    }
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parses a double-quoted TOML basic string with `\"` and `\\` escapes.
fn parse_toml_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            }
        } else if c == '"' {
            return None; // unescaped quote mid-string: malformed
        } else {
            out.push(c);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let cfg = LintConfig::parse(
            r#"
# workspace allowlist
[[allow]]
rule = "secret-debug"
path = "crates/core/src/litmus.rs"
item = "CandidateKey"
reason = "attacker-side output"

[[allow]]
rule = "panic"
path = "crates/bench"
reason = "bench harness may panic"
"#,
        )
        .unwrap();
        assert_eq!(cfg.allows.len(), 2);
        assert_eq!(cfg.allows[0].item.as_deref(), Some("CandidateKey"));
        assert!(cfg.allows_finding(
            "secret-debug",
            "crates/core/src/litmus.rs",
            Some("CandidateKey")
        ));
        assert!(!cfg.allows_finding(
            "secret-debug",
            "crates/core/src/litmus.rs",
            Some("OtherStruct")
        ));
        assert!(cfg.allows_finding("panic", "crates/bench/src/lib.rs", Some("unwrap")));
        assert!(!cfg.allows_finding("panic", "crates/core/src/lib.rs", None));
    }

    #[test]
    fn reason_is_mandatory() {
        let err = LintConfig::parse("[[allow]]\nrule = \"panic\"\npath = \"x\"\n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_rule_rejected() {
        let err =
            LintConfig::parse("[[allow]]\nrule = \"nope\"\npath = \"x\"\nreason = \"r\"\n")
                .unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn comments_and_escapes() {
        let cfg = LintConfig::parse(
            "[[allow]]\nrule = \"panic\" # trailing\npath = \"a#b\"\nreason = \"say \\\"why\\\"\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allows[0].path, "a#b");
        assert_eq!(cfg.allows[0].reason, "say \"why\"");
    }

    #[test]
    fn empty_config_is_fine() {
        assert!(LintConfig::parse("").unwrap().allows.is_empty());
        assert!(LintConfig::parse("# just a comment\n").unwrap().allows.is_empty());
    }
}
