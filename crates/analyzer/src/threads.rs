//! The thread-role graph: which functions run on which kind of thread.
//!
//! v4's concurrency rules need to know *where* code executes, not just
//! what it does. Every spawn site extracted by [`crate::summaries`]
//! produced a synthetic closure fact (`{fn}::spawn@{line}`); those are
//! the roots here. Each root gets a role inferred from the names in play
//! (the spawning function, the closure's direct callees) and from channel
//! shape (a closure feeding a rendezvous channel is a pipeline producer),
//! then the role propagates breadth-first through resolved call edges —
//! so a blocking call two helpers deep from the spawn site carries the
//! event-loop role even though nothing on the path is *named* like an
//! event loop. Spawn edges are deliberately not crossed: a thread spawned
//! from an event loop is its own root with its own role.
//!
//! Functions with no role run on the main thread (or a caller whose role
//! we cannot see); the rules in [`crate::concurrency`] only fire on
//! role-carrying nodes, keeping the pass false-positive-shy.

use std::collections::HashMap;

use crate::dataflow::seg_matches;
use crate::summaries::{ChanKind, ChanOpKind, FnFact, SummaryCtx};

/// What kind of thread a spawn site creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadRole {
    /// A poll/readiness loop multiplexing many connections — must never
    /// block.
    EventLoop,
    /// A per-connection (or acceptor) thread: owns one socket and may
    /// block on it, but must not sleep or drain unbounded queues.
    ConnHandler,
    /// A queue worker: blocking on its own job queue is its purpose.
    QueueWorker,
    /// A pipeline producer feeding a rendezvous/bounded channel.
    Producer,
    /// Any other spawned thread.
    Generic,
}

impl ThreadRole {
    pub(crate) fn idx(self) -> usize {
        match self {
            ThreadRole::EventLoop => 0,
            ThreadRole::ConnHandler => 1,
            ThreadRole::QueueWorker => 2,
            ThreadRole::Producer => 3,
            ThreadRole::Generic => 4,
        }
    }

    fn bit(self) -> u8 {
        1 << self.idx()
    }

    pub(crate) fn label(self) -> &'static str {
        match self {
            ThreadRole::EventLoop => "event-loop",
            ThreadRole::ConnHandler => "connection-handler",
            ThreadRole::QueueWorker => "queue-worker",
            ThreadRole::Producer => "pipeline-producer",
            ThreadRole::Generic => "spawned",
        }
    }
}

pub(crate) const ALL_ROLES: [ThreadRole; 5] = [
    ThreadRole::EventLoop,
    ThreadRole::ConnHandler,
    ThreadRole::QueueWorker,
    ThreadRole::Producer,
    ThreadRole::Generic,
];

/// One spawn site acting as a role root.
#[derive(Debug, Clone)]
pub(crate) struct RoleRoot {
    pub(crate) role: ThreadRole,
    /// File index of the spawn site.
    pub(crate) file: usize,
    pub(crate) line: u32,
    /// The function containing the spawn.
    pub(crate) spawner: String,
}

/// Role assignment for every call-graph node.
pub(crate) struct ThreadRoles {
    /// Role bitmask per node id.
    roles: Vec<u8>,
    /// Representative root per `(node, role)`, for finding messages.
    root_of: HashMap<(usize, usize), usize>,
    pub(crate) roots: Vec<RoleRoot>,
}

impl ThreadRoles {
    pub(crate) fn has_role(&self, node: usize, role: ThreadRole) -> bool {
        self.roles
            .get(node)
            .map_or(false, |r| r & role.bit() != 0)
    }

    pub(crate) fn root_for(&self, node: usize, role: ThreadRole) -> Option<&RoleRoot> {
        self.root_of
            .get(&(node, role.idx()))
            .map(|&r| &self.roots[r])
    }

    /// "event-loop thread spawned at crates/cluster/src/server.rs:151" —
    /// the provenance clause findings append.
    pub(crate) fn provenance(&self, ctx: &SummaryCtx, node: usize, role: ThreadRole) -> String {
        match self.root_for(node, role) {
            Some(root) => format!(
                "{} thread spawned in `{}` ({}:{})",
                root.role.label(),
                root.spawner,
                ctx.graph.file_paths[root.file],
                root.line
            ),
            None => format!("{} thread", role.label()),
        }
    }
}

/// Name segments that vote for each role, checked in precedence order —
/// `worker_loop` must classify as a worker even though it ends in `loop`.
const WORKER_SEGS: &[&str] = &["worker", "job"];
const CONN_SEGS: &[&str] = &["handle", "handler", "connection", "conn", "client", "accept", "session"];
const EVENT_SEGS: &[&str] = &["event", "poll", "react", "select"];
const PRODUCER_SEGS: &[&str] = &["producer", "produce", "pipeline", "pipelined", "decode", "prefetch", "feed"];

/// Builds the role graph for the whole workspace.
pub(crate) fn build(ctx: &SummaryCtx) -> ThreadRoles {
    let g = &ctx.graph;
    let mut by_name: HashMap<(usize, &str), usize> = HashMap::new();
    for (id, node) in g.nodes.iter().enumerate() {
        by_name.insert((node.file, node.fact.name.as_str()), id);
    }

    let mut roles = vec![0u8; g.nodes.len()];
    let mut root_of: HashMap<(usize, usize), usize> = HashMap::new();
    let mut roots: Vec<RoleRoot> = Vec::new();
    let mut queue: Vec<(usize, ThreadRole, usize)> = Vec::new();

    for node in g.nodes.iter() {
        for spawn in &node.fact.spawns {
            let Some(&closure) = by_name.get(&(node.file, spawn.closure.as_str())) else {
                continue;
            };
            let role = infer_role(&node.fact, &g.nodes[closure].fact);
            let root_idx = roots.len();
            roots.push(RoleRoot {
                role,
                file: node.file,
                line: spawn.line,
                spawner: node.fact.name.clone(),
            });
            queue.push((closure, role, root_idx));
        }
    }

    // BFS through resolved call edges; each (node, role) is visited once,
    // keeping its first (nearest-root) provenance.
    let mut head = 0;
    while head < queue.len() {
        let (id, role, root_idx) = queue[head];
        head += 1;
        if roles[id] & role.bit() != 0 {
            continue;
        }
        roles[id] |= role.bit();
        root_of.insert((id, role.idx()), root_idx);
        for call in &g.nodes[id].fact.calls {
            for cand in g.resolve(&call.callee, g.nodes[id].file) {
                if roles[cand] & role.bit() == 0 {
                    queue.push((cand, role, root_idx));
                }
            }
        }
    }

    ThreadRoles {
        roles,
        root_of,
        roots,
    }
}

/// Infers a spawn closure's role from the names in play and the channel
/// shape. Precedence matters: worker beats conn beats event-loop, so
/// `worker_loop` never reads as an event loop via its `loop` segment.
fn infer_role(spawner: &FnFact, closure: &FnFact) -> ThreadRole {
    let mut names: Vec<&str> = vec![local_name(&spawner.name)];
    for call in &closure.calls {
        names.push(call.callee.last_segment());
    }
    let vote = |segs: &[&str]| names.iter().any(|n| seg_matches(n, segs));
    if vote(WORKER_SEGS) {
        return ThreadRole::QueueWorker;
    }
    if vote(CONN_SEGS) {
        return ThreadRole::ConnHandler;
    }
    if vote(EVENT_SEGS) {
        return ThreadRole::EventLoop;
    }
    if vote(PRODUCER_SEGS) || feeds_handoff_channel(spawner, closure) {
        return ThreadRole::Producer;
    }
    ThreadRole::Generic
}

fn local_name(name: &str) -> &str {
    name.rsplit("::").next().unwrap_or(name)
}

/// The closure sends on a rendezvous/bounded channel created by the
/// spawning function — the pipelined decode/scan producer shape.
fn feeds_handoff_channel(spawner: &FnFact, closure: &FnFact) -> bool {
    closure.chan_ops.iter().any(|op| {
        matches!(op.op, ChanOpKind::Send | ChanOpKind::TrySend)
            && spawner.channels.iter().any(|c| {
                c.tx == op.endpoint && matches!(c.kind, ChanKind::Rendezvous | ChanKind::Bounded)
            })
    })
}
