//! `coldboot-lint`: run the secret-hygiene analysis over the workspace.
//!
//! ```text
//! coldboot-lint [--root PATH] [--config PATH] [--format text|json] [--list-rules]
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use coldboot_analyzer::{lint_workspace, render_json, render_text, LintConfig, RULE_IDS};

const USAGE: &str =
    "usage: coldboot-lint [--root PATH] [--config PATH] [--format text|json] [--list-rules]";

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    list_rules: bool,
    help: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: false,
        list_rules: false,
        help: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root requires a path")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config requires a path")?));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => {
                    return Err(format!(
                        "--format expects `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("coldboot-lint: {msg}");
            eprintln!("coldboot-lint: {USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.list_rules {
        for rule in RULE_IDS {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }
    let config = match &args.config {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))
            .and_then(|text| LintConfig::parse(&text)),
        None => coldboot_analyzer::load_config(&args.root),
    };
    let config = match config {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("coldboot-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let findings = match lint_workspace(&args.root, &config) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("coldboot-lint: workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        println!("{}", render_json(&findings));
    } else {
        print!("{}", render_text(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
