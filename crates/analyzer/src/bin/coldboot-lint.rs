//! `coldboot-lint`: run the secret-hygiene analysis over the workspace.
//!
//! ```text
//! coldboot-lint [--root PATH] [--deny] [--baseline PATH] [--format text|json|sarif] ...
//! ```
//!
//! Exit codes: 0 = clean (or warn-mode findings), 1 = findings under
//! `--deny`, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use coldboot_analyzer::{
    lint_workspace_with, render_json, render_sarif, render_text, rule_explanation, Baseline,
    LintConfig, LintOptions, RULE_DESCRIPTIONS, RULE_IDS,
};

const USAGE: &str = "usage: coldboot-lint [OPTIONS]";

const HELP: &str = "\
coldboot-lint: secret-hygiene and bug-class static analysis for the
cold-boot reproduction workspace.

usage: coldboot-lint [OPTIONS]

options:
  --root PATH            workspace root to lint (default: .)
  --config PATH          lint.toml to use (default: <root>/lint.toml)
  --format FMT           output format: text (default), json, or sarif
                         (SARIF 2.1.0, for CI annotation)
  --deny                 exit non-zero (1) when any finding remains after
                         baseline/allowlist filtering. Without --deny the
                         tool reports findings but exits 0 (warn mode) --
                         CI gates should pass --deny.
  --baseline PATH        suppress findings recorded in a baseline file.
                         Entries match on (rule, file, item), not line, so
                         unrelated edits don't un-suppress them. Use this
                         to adopt the linter on a codebase with existing
                         findings, then burn the baseline down over time.
  --write-baseline PATH  write the current findings to PATH as a baseline
                         and exit 0; pair with --baseline on later runs
  --threads N            worker threads for the per-file fan-out
                         (default: auto from available parallelism)
  --cache-dir PATH       analysis cache directory
                         (default: <root>/target/lint-cache)
  --no-cache             disable the analysis cache for this run
  --allow-unused-allows  don't report lint.toml allow entries that match
                         no finding (`stale-allow`)
  --stats                print check-phase (files/reanalyzed/cached) and
                         summary-phase (summarized/cached, call-graph
                         fns/edges/sccs) counts to stderr
  --list-rules           print every rule id with its description
  --explain RULE         print a rule's rationale and a fix example
  -h, --help             show this help

exit codes: 0 clean or warn-mode findings; 1 findings with --deny;
2 usage or I/O error.";

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    deny: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    threads: usize,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    allow_unused_allows: bool,
    stats: bool,
    list_rules: bool,
    explain: Option<String>,
    help: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        format: Format::Text,
        deny: false,
        baseline: None,
        write_baseline: None,
        threads: 0,
        cache_dir: None,
        no_cache: false,
        allow_unused_allows: false,
        stats: false,
        list_rules: false,
        explain: None,
        help: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root requires a path")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config requires a path")?));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.format = Format::Json,
                Some("text") => args.format = Format::Text,
                Some("sarif") => args.format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format expects `text`, `json`, or `sarif`, got {:?}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--deny" => args.deny = true,
            "--baseline" => {
                args.baseline =
                    Some(PathBuf::from(it.next().ok_or("--baseline requires a path")?));
            }
            "--write-baseline" => {
                args.write_baseline = Some(PathBuf::from(
                    it.next().ok_or("--write-baseline requires a path")?,
                ));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads requires a count")?;
                args.threads = v
                    .parse()
                    .map_err(|_| format!("--threads expects a number, got `{v}`"))?;
            }
            "--cache-dir" => {
                args.cache_dir =
                    Some(PathBuf::from(it.next().ok_or("--cache-dir requires a path")?));
            }
            "--no-cache" => args.no_cache = true,
            "--allow-unused-allows" => args.allow_unused_allows = true,
            "--stats" => args.stats = true,
            "--list-rules" => args.list_rules = true,
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain requires a rule id")?);
            }
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("coldboot-lint: {msg}");
            eprintln!("coldboot-lint: {USAGE} (try --help)");
            return ExitCode::from(2);
        }
    };
    if args.help {
        println!("{HELP}");
        return ExitCode::SUCCESS;
    }
    if args.list_rules {
        for (rule, desc) in RULE_DESCRIPTIONS {
            println!("{rule:16} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(rule) = &args.explain {
        match rule_explanation(rule) {
            Some((why, fix)) => {
                let desc = RULE_DESCRIPTIONS
                    .iter()
                    .find(|(r, _)| r == rule)
                    .map_or("", |(_, d)| *d);
                println!("{rule}: {desc}\n\nwhy:\n  {why}\n\nfix:\n  {fix}");
                return ExitCode::SUCCESS;
            }
            None => {
                eprintln!(
                    "coldboot-lint: unknown rule `{rule}`; known rules: {}",
                    RULE_IDS.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }
    let config = match &args.config {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))
            .and_then(|text| LintConfig::parse(&text)),
        None => coldboot_analyzer::load_config(&args.root),
    };
    let config = match config {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("coldboot-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let baseline = match &args.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("coldboot-lint: failed to read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Baseline::parse(&text) {
                Ok(b) => Some(b),
                Err(msg) => {
                    eprintln!("coldboot-lint: {}: {msg}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let opts = LintOptions {
        threads: args.threads,
        cache_dir: if args.no_cache {
            None
        } else {
            Some(
                args.cache_dir
                    .clone()
                    .unwrap_or_else(|| args.root.join("target").join("lint-cache")),
            )
        },
        check_stale_allows: !args.allow_unused_allows,
    };
    let run = match lint_workspace_with(&args.root, &config, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("coldboot-lint: workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    let mut findings = run.findings;
    if let Some(b) = &baseline {
        findings.retain(|f| !b.covers(f));
    }
    if args.stats {
        eprintln!(
            "coldboot-lint: {} files, {} reanalyzed, {} cached",
            run.stats.files, run.stats.reanalyzed, run.stats.cached
        );
        eprintln!(
            "coldboot-lint: summaries: {} extracted, {} cached; call graph: {} fns, \
             {} edges, {} sccs (max {})",
            run.stats.summarized,
            run.stats.summary_cached,
            run.stats.summary.fns,
            run.stats.summary.edges,
            run.stats.summary.sccs,
            run.stats.summary.max_scc
        );
    }
    if let Some(path) = &args.write_baseline {
        let rendered = Baseline::render(&findings);
        if let Err(e) = std::fs::write(path, rendered) {
            eprintln!("coldboot-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "coldboot-lint: wrote baseline with {} entr{} to {}",
            findings.len(),
            if findings.len() == 1 { "y" } else { "ies" },
            path.display()
        );
        return ExitCode::SUCCESS;
    }
    match args.format {
        Format::Json => println!("{}", render_json(&findings)),
        Format::Sarif => println!("{}", render_sarif(&findings)),
        Format::Text => print!("{}", render_text(&findings)),
    }
    if findings.is_empty() || !args.deny {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
