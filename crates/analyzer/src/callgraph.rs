//! Workspace call graph over the per-file [`crate::summaries`] facts.
//!
//! Resolution is name-based on the same AST the rules already use: a
//! qualified call `Type::method(..)` resolves exactly, a bare call
//! `helper(..)` resolves to free functions of that name, and a method
//! call `recv.method(..)` resolves to every `Type::method` in the
//! workspace. Candidates from the caller's own file are preferred, then
//! the caller's crate, then the whole workspace — so two demo binaries
//! both defining `run()` never pollute each other's summaries. Anything
//! that resolves to nothing (std, external crates) is an *unresolved
//! extern*: the engine falls back to the v2 lexical heuristic for those,
//! so the analysis is tolerant of the workspace's edges.
//!
//! The graph also computes strongly connected components (iterative
//! Tarjan — recursion depth is attacker-, well, workspace-controlled)
//! in reverse topological order, which is exactly the order the summary
//! fixpoint wants: callees stabilize before their callers.

use std::collections::HashMap;

use crate::engine::crate_of;
use crate::summaries::FnFact;

/// Candidate cap: a name resolving to more targets than this (a generic
/// method name like `write`) is treated as unresolved rather than joining
/// half the workspace into one summary.
const MAX_CANDIDATES: usize = 4;

/// A lexical call target before resolution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum CallKey {
    /// `a::b::f(..)` — path segments as written (`Self` already rewritten
    /// to the enclosing impl type at extraction).
    Path(Vec<String>),
    /// `recv.m(..)` — only the method name is known lexically.
    Method(String),
}

impl CallKey {
    /// The callee's display name for messages and hashes.
    pub(crate) fn display(&self) -> String {
        match self {
            CallKey::Path(segs) => segs.join("::"),
            CallKey::Method(m) => format!(".{m}()"),
        }
    }

    /// The last name segment, for the lexical extern fallback.
    pub(crate) fn last_segment(&self) -> &str {
        match self {
            CallKey::Path(segs) => segs.last().map_or("", String::as_str),
            CallKey::Method(m) => m.as_str(),
        }
    }

    /// Serializes to the cache's one-field form (`p:a::b` / `m:name`).
    pub(crate) fn serialize(&self) -> String {
        match self {
            CallKey::Path(segs) => format!("p:{}", segs.join("::")),
            CallKey::Method(m) => format!("m:{m}"),
        }
    }

    /// Parses the [`CallKey::serialize`] form.
    pub(crate) fn deserialize(s: &str) -> Option<CallKey> {
        let (tag, rest) = s.split_once(':')?;
        match tag {
            "p" => Some(CallKey::Path(
                rest.split("::").map(str::to_string).collect(),
            )),
            "m" => Some(CallKey::Method(rest.to_string())),
            _ => None,
        }
    }
}

/// One function in the workspace-wide table.
#[derive(Debug)]
pub(crate) struct FnNode {
    /// Index into the engine's file list.
    pub(crate) file: usize,
    /// The function's facts (owned here after graph construction).
    pub(crate) fact: FnFact,
}

/// The resolved workspace call graph.
#[derive(Debug)]
pub(crate) struct CallGraph {
    pub(crate) nodes: Vec<FnNode>,
    /// Workspace-relative path per file index (for crate/file preference
    /// and for attaching findings).
    pub(crate) file_paths: Vec<String>,
    /// `Type::method` and bare free-function names -> node ids.
    qualified: HashMap<String, Vec<usize>>,
    /// method name -> node ids of every `*::method`.
    methods: HashMap<String, Vec<usize>>,
    /// Total resolved call edges (stats).
    pub(crate) edges: usize,
}

impl CallGraph {
    /// Builds the graph from per-file extraction results. `facts[i]`
    /// belongs to `file_paths[i]`.
    pub(crate) fn build(file_paths: Vec<String>, facts: Vec<Vec<FnFact>>) -> CallGraph {
        let mut nodes = Vec::new();
        let mut qualified: HashMap<String, Vec<usize>> = HashMap::new();
        let mut methods: HashMap<String, Vec<usize>> = HashMap::new();
        for (file, file_facts) in facts.into_iter().enumerate() {
            for fact in file_facts {
                let id = nodes.len();
                qualified.entry(fact.name.clone()).or_default().push(id);
                if let Some((_, m)) = fact.name.rsplit_once("::") {
                    methods.entry(m.to_string()).or_default().push(id);
                }
                nodes.push(FnNode { file, fact });
            }
        }
        let mut g = CallGraph {
            nodes,
            file_paths,
            qualified,
            methods,
            edges: 0,
        };
        let mut edges = 0;
        for id in 0..g.nodes.len() {
            let file = g.nodes[id].file;
            for j in 0..g.nodes[id].fact.calls.len() {
                let target = g.nodes[id].fact.calls[j].callee.clone();
                edges += g.resolve(&target, file).len();
            }
        }
        g.edges = edges;
        g
    }

    /// Resolves a call key from the perspective of `caller_file`:
    /// same-file candidates win, then same-crate, then workspace-wide,
    /// capped at [`MAX_CANDIDATES`]. Empty means unresolved extern.
    pub(crate) fn resolve(&self, target: &CallKey, caller_file: usize) -> Vec<usize> {
        let all: &[usize] = match target {
            CallKey::Method(m) => self.methods.get(m).map_or(&[], Vec::as_slice),
            CallKey::Path(segs) => {
                let qualified = if segs.len() >= 2 {
                    let name = format!("{}::{}", segs[segs.len() - 2], segs[segs.len() - 1]);
                    self.qualified.get(&name).map(Vec::as_slice)
                } else {
                    None
                };
                match qualified {
                    Some(ids) => ids,
                    None => segs
                        .last()
                        .and_then(|last| self.qualified.get(last))
                        .map_or(&[], Vec::as_slice),
                }
            }
        };
        let narrowed = |pred: &dyn Fn(usize) -> bool| -> Vec<usize> {
            all.iter().copied().filter(|&id| pred(id)).collect()
        };
        let same_file = narrowed(&|id| self.nodes[id].file == caller_file);
        let picked = if !same_file.is_empty() {
            same_file
        } else {
            let caller_crate = crate_of(&self.file_paths[caller_file]);
            let same_crate = narrowed(&|id| {
                crate_of(&self.file_paths[self.nodes[id].file]) == caller_crate
            });
            if !same_crate.is_empty() {
                same_crate
            } else {
                all.to_vec()
            }
        };
        if picked.len() > MAX_CANDIDATES {
            Vec::new()
        } else {
            picked
        }
    }

    /// Strongly connected components in reverse topological order
    /// (callees before callers), via iterative Tarjan.
    pub(crate) fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|id| {
                let file = self.nodes[id].file;
                let mut out: Vec<usize> = self.nodes[id]
                    .fact
                    .calls
                    .iter()
                    .flat_map(|c| self.resolve(&c.callee, file))
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        let mut next_index = 0usize;
        // Explicit DFS frames: (node, next child position).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            frames.push((start, 0));
            while let Some(&mut (v, ref mut child)) = frames.last_mut() {
                if *child == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = adj[v].get(*child) {
                    *child += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summaries::{CallFact, FnFact};

    fn fact(name: &str, calls: &[CallKey]) -> FnFact {
        FnFact {
            name: name.to_string(),
            calls: calls
                .iter()
                .map(|k| CallFact {
                    callee: k.clone(),
                    ..CallFact::default()
                })
                .collect(),
            ..FnFact::default()
        }
    }

    fn path(name: &str) -> CallKey {
        CallKey::Path(name.split("::").map(str::to_string).collect())
    }

    #[test]
    fn key_serialization_round_trips() {
        for key in [path("a::b::f"), path("f"), CallKey::Method("m".into())] {
            assert_eq!(CallKey::deserialize(&key.serialize()), Some(key));
        }
        assert_eq!(CallKey::deserialize("x:wat"), None);
    }

    #[test]
    fn same_crate_candidates_shadow_foreign_ones() {
        let g = CallGraph::build(
            vec![
                "crates/a/src/lib.rs".into(),
                "crates/a/src/caller.rs".into(),
                "crates/b/src/lib.rs".into(),
            ],
            vec![
                vec![fact("run", &[])],
                vec![fact("caller", &[path("run")])],
                vec![fact("run", &[])],
            ],
        );
        let resolved = g.resolve(&path("run"), 1);
        assert_eq!(resolved.len(), 1);
        assert_eq!(g.nodes[resolved[0]].file, 0);
        // From crate b, its own `run` wins instead.
        assert_eq!(g.resolve(&path("run"), 2), vec![2]);
    }

    #[test]
    fn qualified_beats_bare_and_methods_fan_out() {
        let g = CallGraph::build(
            vec!["crates/a/src/lib.rs".into()],
            vec![vec![
                fact("Aes::expand", &[]),
                fact("expand", &[]),
                fact("Chacha::expand", &[]),
            ]],
        );
        assert_eq!(g.resolve(&path("Aes::expand"), 0), vec![0]);
        assert_eq!(g.resolve(&path("expand"), 0), vec![1]);
        let mut m = g.resolve(&CallKey::Method("expand".into()), 0);
        m.sort_unstable();
        assert_eq!(m, vec![0, 2]);
        assert!(g.resolve(&path("no_such_fn"), 0).is_empty());
    }

    #[test]
    fn sccs_come_out_callees_first() {
        // a -> b -> c, with {b, c} mutually recursive.
        let g = CallGraph::build(
            vec!["crates/a/src/lib.rs".into()],
            vec![vec![
                fact("a", &[path("b")]),
                fact("b", &[path("c")]),
                fact("c", &[path("b")]),
            ]],
        );
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 2);
        let mut cycle = sccs[0].clone();
        cycle.sort_unstable();
        assert_eq!(cycle, vec![1, 2], "the b<->c cycle stabilizes first");
        assert_eq!(sccs[1], vec![0]);
    }
}
