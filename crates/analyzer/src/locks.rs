//! `lock-order`: a workspace-wide Mutex acquisition-order analysis.
//!
//! The dumpd service holds several Mutexes (`queue`, `jobs`, `state`,
//! `result`) and the metrics registry adds more. Two functions that
//! acquire the same pair in opposite orders deadlock under load — the
//! classic bug RacerD-style lock-order analyses catch. This module
//! tracks, per function, which lock guards are live at each acquisition
//! site (including the `lock(&x)` poison-tolerant helper idiom and
//! `.lock().unwrap()` chains), emits `held -> acquired` edges, reports
//! same-lock reacquisition (a guaranteed self-deadlock on std's
//! non-reentrant `Mutex`) immediately, and lets the engine's workspace
//! pass run cycle detection over the union of every file's edges.
//!
//! Lock identity is the field/variable name being locked (`self.state`
//! and a local `state` unify). That approximation is documented: the
//! workspace convention of one name per lock makes it precise here, and
//! a false merge only ever *adds* an ordering constraint.

use crate::ast::{Block, Expr, ExprKind, Stmt};
use crate::diag::Finding;
use crate::engine::{Analysis, FileKind};

/// One observed `held -> acquired` ordering fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    pub held: String,
    pub acquired: String,
    pub line: u32,
    pub fn_name: String,
}

/// Methods that are transparent wrappers around a lock acquisition in an
/// initializer: the guard still ends up bound.
const GUARD_WRAPPERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err"];

/// Scans one file: pushes reacquisition findings and collects ordering
/// edges for the cross-file pass.
pub(crate) fn scan_file(a: &Analysis, edges: &mut Vec<LockEdge>, findings: &mut Vec<Finding>) {
    if !matches!(a.kind, FileKind::Lib | FileKind::Bin) {
        return;
    }
    for f in &a.ast.fns {
        if a.in_test.get(f.tok).copied().unwrap_or(false) {
            continue;
        }
        let mut scan = Scan {
            a,
            fn_name: &f.name,
            frames: Vec::new(),
            edges,
            findings,
        };
        scan.block(&f.body);
    }
}

struct Scan<'a, 'o> {
    a: &'a Analysis,
    fn_name: &'a str,
    /// One frame per live block: `(lock, bound_variable)`.
    frames: Vec<Vec<(String, Option<String>)>>,
    edges: &'o mut Vec<LockEdge>,
    findings: &'o mut Vec<Finding>,
}

impl<'a, 'o> Scan<'a, 'o> {
    fn block(&mut self, b: &'a Block) {
        self.frames.push(Vec::new());
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    name,
                    init: Some(init),
                    else_block,
                    ..
                } => {
                    let core = core_acquisition(init);
                    self.expr(init, core.1);
                    if let Some(lock) = core.0 {
                        self.record(&lock, init.line);
                        if let Some(frame) = self.frames.last_mut() {
                            frame.push((lock, name.clone()));
                        }
                    }
                    if let Some(eb) = else_block {
                        self.block(eb);
                    }
                }
                Stmt::Let { else_block, .. } => {
                    if let Some(eb) = else_block {
                        self.block(eb);
                    }
                }
                Stmt::Expr(e) => {
                    if let Some(var) = drop_target(e) {
                        for frame in self.frames.iter_mut() {
                            frame.retain(|(_, v)| v.as_deref() != Some(var));
                        }
                        continue;
                    }
                    self.expr(e, None);
                }
            }
        }
        self.frames.pop();
    }

    /// Walks an expression recording every (temporary) acquisition,
    /// skipping the one node `skip` that the caller binds as a guard.
    fn expr(&mut self, e: &'a Expr, skip: Option<&'a Expr>) {
        if let Some(s) = skip {
            if std::ptr::eq(e, s) {
                // The bound acquisition itself: the caller records it.
                // Still walk its children for nested acquisitions.
                self.children(e, skip);
                return;
            }
        }
        if let Some(lock) = acquisition(e) {
            self.record(&lock, e.line);
        }
        self.children(e, skip);
    }

    fn children(&mut self, e: &'a Expr, skip: Option<&'a Expr>) {
        match &e.kind {
            ExprKind::Macro { args, .. } | ExprKind::Tuple { items: args } => {
                for a in args {
                    self.expr(a, skip);
                }
            }
            ExprKind::Call { callee, args } => {
                self.expr(callee, skip);
                for a in args {
                    self.expr(a, skip);
                }
            }
            ExprKind::MethodCall { recv, args, .. } => {
                self.expr(recv, skip);
                for a in args {
                    self.expr(a, skip);
                }
            }
            ExprKind::Field { recv, .. } => self.expr(recv, skip),
            ExprKind::Index { recv, index } => {
                self.expr(recv, skip);
                self.expr(index, skip);
            }
            ExprKind::Cast { expr, .. }
            | ExprKind::Unary { expr }
            | ExprKind::Try { expr }
            | ExprKind::Closure { body: expr } => self.expr(expr, skip),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.expr(lhs, skip);
                self.expr(rhs, skip);
            }
            ExprKind::Assign { target, value } => {
                self.expr(target, skip);
                self.expr(value, skip);
            }
            ExprKind::Range { lo, hi } => {
                if let Some(l) = lo {
                    self.expr(l, skip);
                }
                if let Some(h) = hi {
                    self.expr(h, skip);
                }
            }
            ExprKind::If { cond, then, els } => {
                self.expr(cond, skip);
                self.block(then);
                if let Some(e2) = els {
                    self.expr(e2, skip);
                }
            }
            ExprKind::LetCond { scrut, .. } => self.expr(scrut, skip),
            ExprKind::Match { scrut, arms } => {
                self.expr(scrut, skip);
                for arm in arms {
                    self.expr(&arm.body, skip);
                }
            }
            ExprKind::Loop { body } => self.block(body),
            ExprKind::While { cond, body } => {
                self.expr(cond, skip);
                self.block(body);
            }
            ExprKind::For { iter, body, .. } => {
                self.expr(iter, skip);
                self.block(body);
            }
            ExprKind::BlockExpr(b) => self.block(b),
            ExprKind::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.expr(v, skip);
                }
            }
            ExprKind::Return { value } => {
                if let Some(v) = value {
                    self.expr(v, skip);
                }
            }
            ExprKind::Path(_)
            | ExprKind::Lit
            | ExprKind::Break
            | ExprKind::Continue
            | ExprKind::Unknown => {}
        }
    }

    /// Records edges from every held lock to `lock` and reports
    /// reacquisition of a lock already held.
    fn record(&mut self, lock: &str, line: u32) {
        let mut reacquired = false;
        for (held, _) in self.frames.iter().flatten() {
            if held == lock {
                reacquired = true;
            } else {
                self.edges.push(LockEdge {
                    held: held.clone(),
                    acquired: lock.to_string(),
                    line,
                    fn_name: self.fn_name.to_string(),
                });
            }
        }
        if reacquired {
            self.findings.push(Finding {
                file: self.a.path.clone(),
                line,
                rule: "lock-order",
                message: format!(
                    "`{}` acquires `{lock}` while already holding it; std `Mutex` is not \
                     reentrant, this self-deadlocks",
                    self.fn_name
                ),
                item: Some(lock.to_string()),
            });
        }
    }
}

/// The lock name an expression acquires, if the expression *is* an
/// acquisition: `x.lock()` / `lock(&x)`.
fn acquisition(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::MethodCall { recv, method, args } if method == "lock" && args.is_empty() => {
            lock_name(recv)
        }
        ExprKind::Call { callee, args } if args.len() == 1 => {
            if let ExprKind::Path(segs) = &callee.kind {
                if segs.last().map(String::as_str) == Some("lock") {
                    return lock_name(&args[0]);
                }
            }
            None
        }
        _ => None,
    }
}

/// Strips transparent guard wrappers (`?`, `.unwrap()`, ...) off an
/// initializer; returns the acquired lock and the acquisition node when
/// the core of the initializer is an acquisition (so the binding holds
/// the guard). `lock(&x).clone()` is *not* a held guard.
fn core_acquisition(e: &Expr) -> (Option<String>, Option<&Expr>) {
    let mut cur = e;
    loop {
        if let Some(lock) = acquisition(cur) {
            return (Some(lock), Some(cur));
        }
        match &cur.kind {
            ExprKind::Try { expr } => cur = expr,
            ExprKind::MethodCall { recv, method, .. }
                if GUARD_WRAPPERS.contains(&method.as_str()) =>
            {
                cur = recv;
            }
            _ => return (None, None),
        }
    }
}

/// The name of the thing being locked: the last field/path segment that
/// is not `self`.
fn lock_name(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Field { name, .. } => Some(name.clone()),
        ExprKind::Path(segs) => {
            let last = segs.last()?;
            if last == "self" {
                None
            } else {
                Some(last.clone())
            }
        }
        ExprKind::Unary { expr } | ExprKind::Try { expr } => lock_name(expr),
        ExprKind::MethodCall { recv, .. } | ExprKind::Index { recv, .. } => lock_name(recv),
        _ => None,
    }
}

/// `drop(var)` statements release the named guard.
fn drop_target(e: &Expr) -> Option<&str> {
    if let ExprKind::Call { callee, args } = &e.kind {
        if let ExprKind::Path(segs) = &callee.kind {
            if segs.last().map(String::as_str) == Some("drop") && args.len() == 1 {
                if let ExprKind::Path(arg) = &args[0].kind {
                    if let [only] = arg.as_slice() {
                        return Some(only);
                    }
                }
            }
        }
    }
    None
}

/// Workspace pass: cycle detection over the union of every file's edges.
/// An edge that participates in a cycle is reported once, at its first
/// observation site (sorted by file then line) per distinct
/// `(held, acquired)` pair.
pub(crate) fn cycle_findings(edges: &[(String, LockEdge)]) -> Vec<Finding> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (_, e) in edges {
        adj.entry(e.held.as_str()).or_default().insert(e.acquired.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let mut sorted: Vec<&(String, LockEdge)> = edges.iter().collect();
    sorted.sort_by(|x, y| {
        (x.0.as_str(), x.1.line, x.1.held.as_str(), x.1.acquired.as_str()).cmp(&(
            y.0.as_str(),
            y.1.line,
            y.1.held.as_str(),
            y.1.acquired.as_str(),
        ))
    });
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    let mut findings = Vec::new();
    for (file, e) in sorted {
        if !reaches(&e.acquired, &e.held) {
            continue; // not part of a cycle
        }
        if !reported.insert((e.held.clone(), e.acquired.clone())) {
            continue;
        }
        findings.push(Finding {
            file: file.clone(),
            line: e.line,
            rule: "lock-order",
            message: format!(
                "`{}` acquires `{}` while holding `{}`, but the workspace also acquires \
                 them in the opposite order; pick one order to avoid deadlock",
                e.fn_name, e.acquired, e.held
            ),
            item: Some(format!("{}->{}", e.held, e.acquired)),
        });
    }
    findings
}
