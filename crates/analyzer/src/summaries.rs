//! Per-function summaries and the interprocedural fixpoint.
//!
//! Phase one of the v3 engine: every file is reduced to a list of
//! [`FnFact`]s — a serializable flow IR recording, per function, which
//! *symbolic sources* (intrinsic secrets, parameters, results of earlier
//! call sites) reach its return value, its print sinks, and its narrowing
//! casts, plus local panic/blocking-IO sites and the calls it makes. The
//! facts depend only on the file's own text, so they cache under a plain
//! content hash.
//!
//! [`fixpoint`] then iterates [`FnSummary`]s over the
//! [`crate::callgraph`]'s SCCs in reverse topological order. The summary
//! domain is a finite monotone lattice (two bools and four 16-bit
//! parameter masks per flavor), so each SCC stabilizes; an explicit
//! iteration bound (`8 * |scc| + 8`) backstops the argument. Call-result
//! references inside a fact always point at earlier call sites of the
//! same function (arguments are extracted before the enclosing call is
//! registered), so resolving a fact is a single left-to-right pass.
//!
//! The same summaries drive two workspace rules directly:
//! `panic-reachability` (a dumpd worker/connection entry calls something
//! that can transitively panic) and `blocking-in-worker` (a queue worker
//! reaches blocking socket IO).

use std::collections::HashMap;

use crate::ast::{Block, Expr, ExprKind, Stmt};
use crate::callgraph::{CallGraph, CallKey};
use crate::cache::fnv64;
use crate::dataflow::{
    callee_returns_secret, receiver_is_socket, seg_matches, IO_SCOPED_PATHS, LEN_CAST_EXEMPT,
    LEN_SEGS, READ_METHODS,
};
use crate::diag::Finding;
use crate::engine::{classify, format_captures, Analysis, FileKind, PRINT_MACROS};
use crate::lexer::TokenKind;
use crate::secrets;

/// Function-name segments that mark a service entry point for
/// `panic-reachability`.
const PANIC_ENTRY_SEGS: &[&str] = &[
    "worker", "connection", "conn", "handle", "serve", "dispatch", "accept",
];

/// Function-name segments that mark a queue worker for
/// `blocking-in-worker`. Narrower than the panic set: connection handlers
/// legitimately block on their own socket (that is `untimed-io`'s beat).
const WORKER_ENTRY_SEGS: &[&str] = &["worker", "job"];

/// A symbolic source set in one flow domain: an intrinsic base source
/// (a secret-named field read, a `.len()` result), parameter bits, and
/// references to the results of earlier call sites in the same function.
/// `checked` is only meaningful in the length domain: the value passed
/// through a mask/clamp/try_from and can no longer truncate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Set {
    pub(crate) base: bool,
    pub(crate) checked: bool,
    pub(crate) params: u16,
    pub(crate) calls: Vec<u16>,
}

impl Set {
    fn base() -> Set {
        Set {
            base: true,
            ..Set::default()
        }
    }

    fn param(i: usize) -> Set {
        Set {
            params: if i < 16 { 1 << i } else { 0 },
            ..Set::default()
        }
    }

    fn call(j: usize) -> Set {
        Set {
            calls: vec![j.min(u16::MAX as usize) as u16],
            ..Set::default()
        }
    }

    fn join(mut self, other: &Set) -> Set {
        self.base |= other.base;
        self.checked |= other.checked;
        self.params |= other.params;
        for &c in &other.calls {
            if !self.calls.contains(&c) {
                self.calls.push(c);
            }
        }
        self
    }

    fn with_checked(mut self) -> Set {
        self.checked = true;
        self
    }

    /// Carries any taint at all (checked alone is not taint).
    pub(crate) fn is_taint(&self) -> bool {
        self.base || self.params != 0 || !self.calls.is_empty()
    }

    fn serialize(&self) -> String {
        let refs: Vec<String> = self.calls.iter().map(u16::to_string).collect();
        format!(
            "{}{}:{:04x}:{}",
            u8::from(self.base),
            u8::from(self.checked),
            self.params,
            refs.join(";")
        )
    }

    fn deserialize(s: &str) -> Option<Set> {
        let mut parts = s.split(':');
        let flags = parts.next()?;
        if flags.len() != 2 {
            return None;
        }
        let params = u16::from_str_radix(parts.next()?, 16).ok()?;
        let refs = parts.next()?;
        let calls = if refs.is_empty() {
            Vec::new()
        } else {
            refs.split(';')
                .map(str::parse)
                .collect::<Result<Vec<u16>, _>>()
                .ok()?
        };
        Some(Set {
            base: flags.as_bytes()[0] == b'1',
            checked: flags.as_bytes()[1] == b'1',
            params,
            calls,
        })
    }
}

/// A value's taint in both domains.
#[derive(Debug, Clone, Default)]
struct Val {
    t: Set,
    l: Set,
}

impl Val {
    fn join(self, other: &Val) -> Val {
        Val {
            t: self.t.join(&other.t),
            l: self.l.join(&other.l),
        }
    }

    fn is_taint(&self) -> bool {
        self.t.is_taint() || self.l.is_taint()
    }
}

/// One call site inside a function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CallFact {
    pub(crate) callee: CallKey,
    pub(crate) line: u32,
    /// Secret-domain taint of each argument (self omitted for methods,
    /// matching [`crate::ast::FnDef::params`]).
    pub(crate) args_t: Vec<Set>,
    /// Length-domain taint of each argument.
    pub(crate) args_l: Vec<Set>,
    /// Plain-identifier argument names (`""` for anything else), so
    /// channel endpoints can be tracked one call level deep.
    pub(crate) args_id: Vec<String>,
}

impl Default for CallFact {
    fn default() -> Self {
        CallFact {
            callee: CallKey::Path(Vec::new()),
            line: 0,
            args_t: Vec::new(),
            args_l: Vec::new(),
            args_id: Vec::new(),
        }
    }
}

/// A struct-literal field initialized from a tainted value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StructInit {
    pub(crate) struct_name: String,
    pub(crate) field: String,
    pub(crate) set: Set,
}

/// One thread-spawn site. The closure body is extracted as a synthetic
/// function fact named `{fn}::spawn@{line}`, which the thread-role graph
/// treats as a root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SpawnFact {
    pub(crate) line: u32,
    /// Name of the synthetic closure fact in the same file.
    pub(crate) closure: String,
    /// `scope.spawn(..)` — auto-joined at scope exit, exempt from
    /// `join-leak` (but still a thread-role root).
    pub(crate) scoped: bool,
    /// The JoinHandle is dropped implicitly: neither bound and used, nor
    /// escaping, nor explicitly discarded with `let _ =`.
    pub(crate) leaked: bool,
}

/// How a channel was created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChanKind {
    /// `sync_channel(0)`: send blocks until a receiver arrives.
    Rendezvous,
    /// `sync_channel(n > 0)`.
    Bounded,
    /// `channel()`: send never blocks, the queue is unbounded.
    Unbounded,
}

/// One channel creation site (`let (tx, rx) = channel()` and friends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ChannelFact {
    pub(crate) line: u32,
    pub(crate) kind: ChanKind,
    /// Binding name of the sender endpoint.
    pub(crate) tx: String,
    /// Binding name of the receiver endpoint.
    pub(crate) rx: String,
}

/// A send/recv-family operation on a named endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChanOpKind {
    Send,
    TrySend,
    /// Blocking `recv()` (and `for msg in rx` iteration).
    Recv,
    TryRecv,
    /// `recv_timeout` / `recv_deadline`: blocking but bounded.
    RecvTimeout,
}

/// One channel operation inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ChanOp {
    pub(crate) line: u32,
    pub(crate) op: ChanOpKind,
    /// The send/recv result is immediately `.unwrap()`/`.expect()`ed, so
    /// endpoint disconnect becomes a panic.
    pub(crate) unwrapped: bool,
    /// The endpoint binding (or field/parameter) name operated on.
    pub(crate) endpoint: String,
}

/// Memory ordering named at an atomic call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AtomicOrd {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

/// Shape of an atomic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AtomicOpKind {
    Store,
    Load,
    /// fetch_*/swap/compare_exchange: read-modify-write, inherently a
    /// single-location monotonic update.
    Rmw,
}

/// One atomic operation inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct AtomicFact {
    pub(crate) line: u32,
    pub(crate) op: AtomicOpKind,
    pub(crate) ord: AtomicOrd,
    /// The stored value is a literal `true`/`false` — the cooperative-flag
    /// shape the `atomic-ordering` allowlist keys on.
    pub(crate) is_flag: bool,
    /// Receiver tail: `shared.stop.store(..)` records `stop`.
    pub(crate) name: String,
}

/// Everything the fixpoint needs to know about one function, extracted
/// from its own file alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct FnFact {
    /// `name` or `Type::method`, as in [`crate::ast::FnDef`].
    pub(crate) name: String,
    pub(crate) line: u32,
    /// Line of the first unsuppressed panic construct, if any.
    pub(crate) local_panic: Option<u32>,
    /// Line of the first blocking socket operation, if any.
    pub(crate) local_block: Option<u32>,
    /// Line of the first `thread::sleep` call, if any.
    pub(crate) local_sleep: Option<u32>,
    /// Param bits a send-family operation is performed on.
    pub(crate) param_send: u16,
    /// Param bits a *blocking* recv is performed on.
    pub(crate) param_recv: u16,
    pub(crate) calls: Vec<CallFact>,
    pub(crate) spawns: Vec<SpawnFact>,
    pub(crate) channels: Vec<ChannelFact>,
    pub(crate) chan_ops: Vec<ChanOp>,
    pub(crate) atomics: Vec<AtomicFact>,
    /// Taint reaching the return value.
    pub(crate) ret_t: Set,
    pub(crate) ret_l: Set,
    /// Taint reaching a print/format sink.
    pub(crate) sink_t: Set,
    /// Length taint reaching an unchecked narrowing cast.
    pub(crate) narrow_l: Set,
    pub(crate) struct_inits: Vec<StructInit>,
}

/// The fixpoint's verdict about one function, as seen by its callers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// The return value carries intrinsic key material.
    pub returns_secret: bool,
    /// Param bits whose secret taint flows to the return value.
    pub param_to_ret: u16,
    /// Param bits that (transitively) reach a print/format sink.
    pub param_to_sink: u16,
    /// The return value is a length/size.
    pub returns_len: bool,
    /// Param bits whose length taint flows to the return value.
    pub param_to_ret_len: u16,
    /// Param bits that (transitively) reach an unchecked narrowing cast.
    pub param_narrowed: u16,
    /// A panic is reachable from this function.
    pub may_panic: bool,
    /// Blocking socket IO is reachable from this function.
    pub may_block: bool,
}

impl FnSummary {
    fn join(mut self, o: &FnSummary) -> FnSummary {
        self.returns_secret |= o.returns_secret;
        self.param_to_ret |= o.param_to_ret;
        self.param_to_sink |= o.param_to_sink;
        self.returns_len |= o.returns_len;
        self.param_to_ret_len |= o.param_to_ret_len;
        self.param_narrowed |= o.param_narrowed;
        self.may_panic |= o.may_panic;
        self.may_block |= o.may_block;
        self
    }

    /// Stable hash for dependency-aware cache keys.
    pub(crate) fn hash(&self) -> u64 {
        let bytes = [
            u8::from(self.returns_secret),
            u8::from(self.returns_len),
            u8::from(self.may_panic),
            u8::from(self.may_block),
            (self.param_to_ret & 0xff) as u8,
            (self.param_to_ret >> 8) as u8,
            (self.param_to_sink & 0xff) as u8,
            (self.param_to_sink >> 8) as u8,
            (self.param_to_ret_len & 0xff) as u8,
            (self.param_to_ret_len >> 8) as u8,
            (self.param_narrowed & 0xff) as u8,
            (self.param_narrowed >> 8) as u8,
        ];
        fnv64(&bytes)
    }
}

/// Bookkeeping about the summary phase, surfaced through `--stats` and
/// the lint bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryStats {
    /// Functions in the workspace call graph.
    pub fns: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Strongly connected components.
    pub sccs: usize,
    /// Largest SCC (1 unless something is recursive).
    pub max_scc: usize,
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

/// Extracts per-function facts from one analyzed file. Test functions and
/// test/bench files produce nothing: they are never legitimate callees of
/// shipped code paths.
pub(crate) fn extract(a: &Analysis) -> Vec<FnFact> {
    if !matches!(a.kind, FileKind::Lib | FileKind::Bin | FileKind::Example) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &a.ast.fns {
        if a.in_test.get(f.tok).copied().unwrap_or(false) {
            continue;
        }
        let self_ty = f.name.rsplit_once("::").map(|(t, _)| t.to_string());
        let mut ex = Extractor {
            a,
            self_ty,
            env: HashMap::new(),
            params: f.params.iter().map(|(n, _)| n.clone()).collect(),
            fact: FnFact {
                name: f.name.clone(),
                line: f.line,
                ..FnFact::default()
            },
            pending: Vec::new(),
            spawned: Vec::new(),
            len_scoped: !LEN_CAST_EXEMPT.contains(&a.path.as_str()),
        };
        for (i, (name, _ty)) in f.params.iter().enumerate() {
            ex.env.insert(
                name.clone(),
                Val {
                    t: Set::param(i),
                    l: Set::param(i),
                },
            );
        }
        let tail = ex.scan_block(&f.body);
        ex.fact.ret_t = std::mem::take(&mut ex.fact.ret_t).join(&tail.t);
        ex.fact.ret_l = std::mem::take(&mut ex.fact.ret_l).join(&tail.l);
        ex.fact.local_panic = local_panic_line(a, f.tok, f.body.span.1);
        resolve_spawn_bindings(a, f.tok, f.body.span.1, &mut ex.fact, &ex.pending);
        let spawned = std::mem::take(&mut ex.spawned);
        out.push(ex.fact);
        out.extend(spawned);
    }
    out
}

/// Decides `leaked` for `let h = thread::spawn(..)` bindings: a handle
/// name never mentioned again inside the function is dropped implicitly.
/// Any further use (`h.join()`, `handles.push(h)`, a return) keeps it
/// clean — false-negative-friendly, like the rest of the linter.
fn resolve_spawn_bindings(
    a: &Analysis,
    start: usize,
    end: usize,
    fact: &mut FnFact,
    pending: &[(usize, String)],
) {
    for (idx, name) in pending {
        let uses = a.tokens[start..=end.min(a.tokens.len().saturating_sub(1))]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text == *name)
            .count();
        // One occurrence is the binding itself.
        if uses <= 1 {
            if let Some(s) = fact.spawns.get_mut(*idx) {
                s.leaked = true;
            }
        }
    }
}

/// First unsuppressed panic construct in `[start, end]` (the same
/// patterns as the `panic` rule; a `lint:allow(panic): reason` that
/// covers the line excludes it — justified panics are not reachability
/// hazards).
fn local_panic_line(a: &Analysis, start: usize, end: usize) -> Option<u32> {
    const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let toks = &a.tokens;
    for i in start..=end.min(toks.len().saturating_sub(1)) {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let text = toks[i].text.as_str();
        let is_method_panic = (text == "unwrap" || text == "expect")
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).map_or(false, |t| t.text == "(");
        let is_macro_panic =
            PANIC_MACROS.contains(&text) && toks.get(i + 1).map_or(false, |t| t.text == "!");
        if !is_method_panic && !is_macro_panic {
            continue;
        }
        let line = toks[i].line;
        let suppressed = a
            .suppressions
            .iter()
            .any(|s| s.has_reason && s.covers("panic", line));
        if !suppressed {
            return Some(line);
        }
    }
    None
}

/// A `thread::spawn`/`.spawn(|..| ..)` call, possibly wrapped in the
/// Builder's `unwrap()`/`expect()` — used to decide the statement-position
/// and `let`-binding contexts for `join-leak`.
fn is_spawn_expr(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Call { callee, args } => {
            matches!(
                &callee.kind,
                ExprKind::Path(segs)
                    if segs.len() >= 2
                        && segs.last().map(String::as_str) == Some("spawn")
                        && segs.contains(&"thread".to_string())
            ) && matches!(args.as_slice(), [a] if matches!(a.kind, ExprKind::Closure { .. }))
        }
        ExprKind::MethodCall { recv, method, args } => match method.as_str() {
            "spawn" => {
                matches!(args.as_slice(), [a] if matches!(a.kind, ExprKind::Closure { .. }))
            }
            "unwrap" | "expect" => is_spawn_expr(recv),
            _ => false,
        },
        _ => false,
    }
}

/// The name of a bare-identifier expression (through `&`/`&mut`).
fn plain_ident(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Path(segs) => match segs.as_slice() {
            [only] => Some(only.clone()),
            _ => None,
        },
        ExprKind::Unary { expr } => plain_ident(expr),
        _ => None,
    }
}

/// The receiver's trailing name: `shared.stop.store(..)` -> `stop`,
/// `flag.load(..)` -> `flag`.
fn receiver_tail(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Path(segs) => segs.last().cloned(),
        ExprKind::Field { name, .. } => Some(name.clone()),
        ExprKind::Unary { expr } | ExprKind::Try { expr } => receiver_tail(expr),
        _ => None,
    }
}

/// Parses an `Ordering::X` argument.
fn ordering_of(e: &Expr) -> Option<AtomicOrd> {
    let ExprKind::Path(segs) = &e.kind else {
        return None;
    };
    match segs.last().map(String::as_str) {
        Some("Relaxed") => Some(AtomicOrd::Relaxed),
        Some("Acquire") => Some(AtomicOrd::Acquire),
        Some("Release") => Some(AtomicOrd::Release),
        Some("AcqRel") => Some(AtomicOrd::AcqRel),
        Some("SeqCst") => Some(AtomicOrd::SeqCst),
        _ => None,
    }
}

struct Extractor<'a> {
    a: &'a Analysis,
    self_ty: Option<String>,
    env: HashMap<String, Val>,
    /// Parameter names of the function being extracted (empty for spawn
    /// closures — captures are not parameters).
    params: Vec<String>,
    fact: FnFact,
    /// `(spawn index, binding name)` for `let h = thread::spawn(..)`,
    /// resolved against the function's token span after the walk.
    pending: Vec<(usize, String)>,
    /// Synthetic facts for spawn-closure bodies, in extraction order.
    spawned: Vec<FnFact>,
    len_scoped: bool,
}

impl<'a> Extractor<'a> {
    /// Walks a block in source order; the block's value is its trailing
    /// expression's value.
    fn scan_block(&mut self, b: &Block) -> Val {
        let mut last = Val::default();
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let {
                    name,
                    names,
                    init,
                    else_block,
                    ..
                } => {
                    last = Val::default();
                    if let Some(e) = init {
                        let spawn_before = self.fact.spawns.len();
                        let v = self.eval(e);
                        self.note_channel_binding(names, e);
                        if is_spawn_expr(e) && self.fact.spawns.len() > spawn_before {
                            let idx = self.fact.spawns.len() - 1;
                            if !self.fact.spawns[idx].scoped {
                                match name {
                                    // `let h = ..`: leak unless `h` is used.
                                    Some(n) if n != "_" => {
                                        self.pending.push((idx, n.clone()))
                                    }
                                    // `let _ = ..` is an explicit detach;
                                    // destructurings keep the handle.
                                    _ => {}
                                }
                            }
                        }
                        if let Some(n) = name {
                            if v.is_taint() {
                                self.env.insert(n.clone(), v);
                            } else {
                                self.env.remove(n);
                            }
                        } else if v.is_taint() {
                            for n in names {
                                self.env.insert(n.clone(), v.clone());
                            }
                        }
                    }
                    if let Some(eb) = else_block {
                        self.scan_block(eb);
                    }
                }
                Stmt::Expr(e) => {
                    let spawn_before = self.fact.spawns.len();
                    last = self.eval(e);
                    // A spawn in statement position (trailing `;`) drops
                    // its JoinHandle on the floor. A tail expression has
                    // no semicolon: its value flows to the enclosing
                    // `let`/field/return, so the handle is kept.
                    let dropped = self
                        .a
                        .tokens
                        .get(e.span.1 + 1)
                        .map_or(false, |t| t.text == ";");
                    if dropped && is_spawn_expr(e) && self.fact.spawns.len() > spawn_before {
                        let idx = self.fact.spawns.len() - 1;
                        if !self.fact.spawns[idx].scoped {
                            self.fact.spawns[idx].leaked = true;
                        }
                    }
                }
            }
        }
        last
    }

    /// Records `let (tx, rx) = channel()` / `sync_channel(n)` creation
    /// sites. The capacity literal distinguishes a rendezvous channel.
    fn note_channel_binding(&mut self, names: &[String], init: &Expr) {
        let ExprKind::Call { callee, args } = &init.kind else {
            return;
        };
        let ExprKind::Path(segs) = &callee.kind else {
            return;
        };
        let kind = match segs.last().map(String::as_str) {
            Some("channel") if args.is_empty() => ChanKind::Unbounded,
            Some("sync_channel") if args.len() == 1 => {
                if self.token_text(&args[0]) == Some("0") {
                    ChanKind::Rendezvous
                } else {
                    ChanKind::Bounded
                }
            }
            _ => return,
        };
        if let [tx, rx] = names {
            self.fact.channels.push(ChannelFact {
                line: init.line,
                kind,
                tx: tx.clone(),
                rx: rx.clone(),
            });
        }
    }

    /// The text of a single-token expression (a literal or bare ident).
    fn token_text(&self, e: &Expr) -> Option<&str> {
        if e.span.0 != e.span.1 {
            return None;
        }
        self.a.tokens.get(e.span.0).map(|t| t.text.as_str())
    }

    fn bind(&mut self, names: &[String], v: &Val) {
        if !v.is_taint() {
            return;
        }
        for n in names {
            self.env.insert(n.clone(), v.clone());
        }
    }

    /// Evaluates one expression: registers the calls it contains (each
    /// exactly once, arguments before the enclosing call, so call-result
    /// references always point backwards) and returns its taint.
    fn eval(&mut self, e: &Expr) -> Val {
        match &e.kind {
            ExprKind::Path(segs) => {
                if let [only] = segs.as_slice() {
                    if let Some(v) = self.env.get(only) {
                        return v.clone();
                    }
                }
                let len = segs.last().map_or(false, |s| seg_matches(s, LEN_SEGS));
                Val {
                    t: Set::default(),
                    l: if len { Set::base() } else { Set::default() },
                }
            }
            ExprKind::Lit | ExprKind::Break | ExprKind::Continue | ExprKind::Unknown => {
                Val::default()
            }
            ExprKind::Macro { name, args } => {
                let argvals: Vec<Val> = args.iter().map(|a| self.eval(a)).collect();
                if PRINT_MACROS.contains(&name.as_str()) && !self.macro_lexically_secret(e) {
                    let mut sink = Set::default();
                    for v in &argvals {
                        sink = sink.join(&v.t);
                    }
                    sink = sink.join(&self.capture_taint(e));
                    self.fact.sink_t = std::mem::take(&mut self.fact.sink_t).join(&sink);
                }
                Val::default()
            }
            ExprKind::Call { callee, args } => {
                // `thread::spawn(|| ..)`: the closure body runs on a new
                // thread, so it becomes a synthetic fact (a thread-role
                // root), not part of this function's flow.
                if let ExprKind::Path(segs) = &callee.kind {
                    if segs.len() >= 2
                        && segs.last().map(String::as_str) == Some("spawn")
                        && segs.contains(&"thread".to_string())
                    {
                        if let [arg] = args.as_slice() {
                            if matches!(arg.kind, ExprKind::Closure { .. }) {
                                self.extract_spawn(e.line, arg, false);
                                return Val::default();
                            }
                        }
                    }
                    if segs.last().map(String::as_str) == Some("sleep")
                        && segs.iter().rev().nth(1).map(String::as_str) == Some("thread")
                        && self.fact.local_sleep.is_none()
                    {
                        self.fact.local_sleep = Some(e.line);
                    }
                }
                let argvals: Vec<Val> = args.iter().map(|a| self.eval(a)).collect();
                let mut t = Set::default();
                for v in &argvals {
                    t = t.join(&v.t);
                }
                if let ExprKind::Path(segs) = &callee.kind {
                    match segs.last().map(String::as_str) {
                        // Checked conversions, exactly as the v2 length rule
                        // treats them; std targets, never registered.
                        Some("try_from") => {
                            let l = argvals
                                .first()
                                .map_or(Set::default(), |v| v.l.clone())
                                .with_checked();
                            return Val { t, l };
                        }
                        Some("min") => {
                            let mut l = Set::default();
                            for v in &argvals {
                                l = l.join(&v.l);
                            }
                            return Val {
                                t,
                                l: l.with_checked(),
                            };
                        }
                        _ => {}
                    }
                    let mut segs = segs.clone();
                    if let (Some(first), Some(ty)) = (segs.first_mut(), &self.self_ty) {
                        if first == "Self" {
                            *first = ty.clone();
                        }
                    }
                    let j = self.register(CallKey::Path(segs), e.line, &argvals, args);
                    return Val {
                        t: t.join(&Set::call(j)),
                        l: Set::call(j),
                    };
                }
                self.eval(callee);
                Val {
                    t,
                    l: Set::default(),
                }
            }
            ExprKind::MethodCall { recv, method, args } => {
                // `scope.spawn(|| ..)` / `Builder::new()..spawn(|| ..)`:
                // same synthetic-fact treatment as `thread::spawn`. Scoped
                // spawns are auto-joined, so only Builder handles can leak.
                if method == "spawn" {
                    if let [arg] = args.as_slice() {
                        if matches!(arg.kind, ExprKind::Closure { .. }) {
                            let scoped = !self.span_mentions(recv, "Builder");
                            self.eval(recv);
                            self.extract_spawn(e.line, arg, scoped);
                            return Val::default();
                        }
                    }
                }
                let rv = self.eval(recv);
                let argvals: Vec<Val> = args.iter().map(|a| self.eval(a)).collect();
                if READ_METHODS.contains(&method.as_str()) || method == "accept" {
                    if receiver_is_socket(recv) && self.fact.local_block.is_none() {
                        self.fact.local_block = Some(e.line);
                    }
                }
                self.note_chan_op(e.line, method, recv);
                self.note_atomic(e.line, method, recv, args);
                if matches!(method.as_str(), "unwrap" | "expect") {
                    if let ExprKind::MethodCall { method: m2, .. } = &recv.kind {
                        if matches!(m2.as_str(), "send" | "recv") {
                            if let Some(op) = self.fact.chan_ops.last_mut() {
                                if op.line == recv.line {
                                    op.unwrapped = true;
                                }
                            }
                        }
                    }
                }
                match method.as_str() {
                    "len" | "capacity" => {
                        return Val {
                            t: Set::default(),
                            l: Set::base(),
                        }
                    }
                    "is_empty" | "count" => return Val::default(),
                    "min" | "clamp" | "try_into" | "rem_euclid" => {
                        return Val {
                            t: rv.t,
                            l: rv.l.with_checked(),
                        }
                    }
                    m if m.starts_with("checked_") || m.starts_with("saturating_") => {
                        return Val {
                            t: rv.t,
                            l: rv.l.with_checked(),
                        }
                    }
                    _ => {}
                }
                let j = self.register(CallKey::Method(method.clone()), e.line, &argvals, args);
                let mut t = rv.t.join(&Set::call(j));
                for v in &argvals {
                    t = t.join(&v.t);
                }
                Val {
                    t,
                    l: rv.l.join(&Set::call(j)),
                }
            }
            ExprKind::Field { recv, name } => {
                let rv = self.eval(recv);
                Val {
                    t: if secrets::is_secret_ident(name) {
                        Set::base()
                    } else {
                        rv.t
                    },
                    l: if seg_matches(name, LEN_SEGS) {
                        Set::base()
                    } else {
                        Set::default()
                    },
                }
            }
            ExprKind::Index { recv, index } => {
                let rv = self.eval(recv);
                self.eval(index);
                rv
            }
            ExprKind::Cast { expr, ty } => {
                let v = self.eval(expr);
                let narrow = matches!(ty.as_str(), "u8" | "u16" | "u32" | "i8" | "i16" | "i32");
                if narrow && self.len_scoped && v.l.is_taint() && !v.l.checked {
                    self.fact.narrow_l = std::mem::take(&mut self.fact.narrow_l).join(&v.l);
                }
                v
            }
            ExprKind::Unary { expr } | ExprKind::Try { expr } => self.eval(expr),
            ExprKind::Binary { op, lhs, rhs } => {
                let lv = self.eval(lhs);
                let rv = self.eval(rhs);
                // Comparisons yield a one-bit bool, not key material —
                // `recovered == expected` is `const-time`'s territory, and
                // letting the bool carry taint would mark every verdict
                // struct (pass/fail summaries) as secret-bearing.
                let t = match op.as_str() {
                    "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||" => Set::default(),
                    _ => lv.t.join(&rv.t),
                };
                let l = match op.as_str() {
                    "&" | "%" => lv.l.join(&rv.l).with_checked(),
                    "+" | "*" | "/" | "^" | "|" | "-" => lv.l.join(&rv.l),
                    _ => Set::default(),
                };
                Val { t, l }
            }
            ExprKind::Assign { target, value } => {
                let v = self.eval(value);
                if let ExprKind::Path(segs) = &target.kind {
                    if let [only] = segs.as_slice() {
                        if v.is_taint() {
                            self.env.insert(only.clone(), v);
                        } else {
                            self.env.remove(only);
                        }
                        return Val::default();
                    }
                }
                self.eval(target);
                Val::default()
            }
            ExprKind::Range { lo, hi } => {
                if let Some(l) = lo {
                    self.eval(l);
                }
                if let Some(h) = hi {
                    self.eval(h);
                }
                Val::default()
            }
            ExprKind::If { cond, then, els } => {
                if let ExprKind::LetCond { names, scrut } = &cond.kind {
                    let sv = self.eval(scrut);
                    self.bind(names, &sv);
                } else {
                    self.eval(cond);
                }
                let tv = self.scan_block(then);
                let ev = els.as_ref().map_or(Val::default(), |e2| self.eval(e2));
                tv.join(&ev)
            }
            ExprKind::LetCond { names, scrut } => {
                let sv = self.eval(scrut);
                self.bind(names, &sv);
                Val::default()
            }
            ExprKind::Match { scrut, arms } => {
                let sv = self.eval(scrut);
                let mut out = Val::default();
                for arm in arms {
                    self.bind(&arm.names, &sv);
                    let av = self.eval(&arm.body);
                    out = out.join(&av);
                }
                out
            }
            ExprKind::Loop { body } => {
                self.scan_block(body);
                Val::default()
            }
            ExprKind::While { cond, body } => {
                if let ExprKind::LetCond { names, scrut } = &cond.kind {
                    let sv = self.eval(scrut);
                    self.bind(names, &sv);
                } else {
                    self.eval(cond);
                }
                self.scan_block(body);
                Val::default()
            }
            ExprKind::For { names, iter, body } => {
                let iv = self.eval(iter);
                // `for msg in rx` blocks on recv every iteration.
                if let Some(endpoint) = plain_ident(iter) {
                    if self.endpoint_known(&endpoint) {
                        self.push_chan_op(iter.line, ChanOpKind::Recv, endpoint);
                    }
                }
                self.bind(names, &iv);
                self.scan_block(body);
                Val::default()
            }
            ExprKind::BlockExpr(b) => self.scan_block(b),
            ExprKind::Closure { body } => {
                self.eval(body);
                Val::default()
            }
            ExprKind::Tuple { items } => {
                let mut t = Set::default();
                for item in items {
                    let v = self.eval(item);
                    t = t.join(&v.t);
                }
                Val {
                    t,
                    l: Set::default(),
                }
            }
            ExprKind::StructLit { path, fields } => {
                let mut t = Set::default();
                let struct_name = path.rsplit("::").next().unwrap_or(path);
                let struct_name = if struct_name == "Self" {
                    self.self_ty.clone().unwrap_or_else(|| path.clone())
                } else {
                    struct_name.to_string()
                };
                for (fname, v) in fields {
                    let fv = self.eval(v);
                    if fv.t.is_taint() && !fname.is_empty() {
                        self.fact.struct_inits.push(StructInit {
                            struct_name: struct_name.clone(),
                            field: fname.clone(),
                            set: fv.t.clone(),
                        });
                    }
                    t = t.join(&fv.t);
                }
                Val {
                    t,
                    l: Set::default(),
                }
            }
            ExprKind::Return { value } => {
                if let Some(v) = value {
                    let rv = self.eval(v);
                    self.fact.ret_t = std::mem::take(&mut self.fact.ret_t).join(&rv.t);
                    self.fact.ret_l = std::mem::take(&mut self.fact.ret_l).join(&rv.l);
                }
                Val::default()
            }
        }
    }

    fn register(&mut self, callee: CallKey, line: u32, argvals: &[Val], args: &[Expr]) -> usize {
        let j = self.fact.calls.len();
        self.fact.calls.push(CallFact {
            callee,
            line,
            args_t: argvals.iter().map(|v| v.t.clone()).collect(),
            args_l: argvals.iter().map(|v| v.l.clone()).collect(),
            args_id: args
                .iter()
                .map(|a| plain_ident(a).unwrap_or_default())
                .collect(),
        });
        j
    }

    /// Extracts a spawn-closure body into a synthetic `{fn}::spawn@{line}`
    /// fact. The environment is cloned so captured taint flows into the
    /// closure; channel endpoints in scope are inherited so ops on
    /// captured senders/receivers still resolve.
    fn extract_spawn(&mut self, line: u32, closure: &Expr, scoped: bool) {
        let ExprKind::Closure { body } = &closure.kind else {
            return;
        };
        let name = format!("{}::spawn@{}", self.fact.name, line);
        let mut sub = Extractor {
            a: self.a,
            self_ty: self.self_ty.clone(),
            env: self.env.clone(),
            params: Vec::new(),
            fact: FnFact {
                name: name.clone(),
                line,
                ..FnFact::default()
            },
            pending: Vec::new(),
            spawned: Vec::new(),
            len_scoped: self.len_scoped,
        };
        // Captured channel endpoints keep their identity inside the
        // closure body.
        sub.fact.channels = self
            .fact
            .channels
            .iter()
            .map(|c| ChannelFact {
                line: c.line,
                kind: c.kind,
                tx: c.tx.clone(),
                rx: c.rx.clone(),
            })
            .collect();
        let inherited = sub.fact.channels.len();
        let tail = sub.eval(body);
        sub.fact.ret_t = std::mem::take(&mut sub.fact.ret_t).join(&tail.t);
        sub.fact.ret_l = std::mem::take(&mut sub.fact.ret_l).join(&tail.l);
        sub.fact.local_panic = local_panic_line(self.a, closure.span.0, closure.span.1);
        resolve_spawn_bindings(self.a, closure.span.0, closure.span.1, &mut sub.fact, &sub.pending);
        // Inherited channels were only context for op resolution; they are
        // not creation sites of the closure.
        sub.fact.channels.drain(..inherited);
        self.fact.spawns.push(SpawnFact {
            line,
            closure: name,
            scoped,
            leaked: false,
        });
        let nested = std::mem::take(&mut sub.spawned);
        self.spawned.push(sub.fact);
        self.spawned.extend(nested);
    }

    /// Records send/recv-family operations on a plain-ident or field
    /// receiver, and marks param endpoints in `param_send`/`param_recv`.
    fn note_chan_op(&mut self, line: u32, method: &str, recv: &Expr) {
        let op = match method {
            "send" => ChanOpKind::Send,
            "try_send" => ChanOpKind::TrySend,
            "recv" => ChanOpKind::Recv,
            "try_recv" => ChanOpKind::TryRecv,
            "recv_timeout" | "recv_deadline" => ChanOpKind::RecvTimeout,
            _ => return,
        };
        let Some(endpoint) = receiver_tail(recv) else {
            return;
        };
        self.push_chan_op(line, op, endpoint);
    }

    fn push_chan_op(&mut self, line: u32, op: ChanOpKind, endpoint: String) {
        if let Some(i) = self.params.iter().position(|p| *p == endpoint) {
            if i < 16 {
                match op {
                    ChanOpKind::Send | ChanOpKind::TrySend => self.fact.param_send |= 1 << i,
                    ChanOpKind::Recv => self.fact.param_recv |= 1 << i,
                    _ => {}
                }
            }
        }
        self.fact.chan_ops.push(ChanOp {
            line,
            op,
            unwrapped: false,
            endpoint,
        });
    }

    /// True when `name` is a channel endpoint this extractor knows about:
    /// a locally (or inherited-from-spawner) created channel binding, or a
    /// parameter whose name says it is a receiver.
    fn endpoint_known(&self, name: &str) -> bool {
        self.fact
            .channels
            .iter()
            .any(|c| c.tx == name || c.rx == name)
            || (self.params.iter().any(|p| p == name)
                && seg_matches(name, &["rx", "receiver"]))
    }

    /// Records atomic `store`/`load`/RMW calls with their named ordering.
    fn note_atomic(&mut self, line: u32, method: &str, recv: &Expr, args: &[Expr]) {
        let (op, ord_arg) = match method {
            "store" if args.len() == 2 => (AtomicOpKind::Store, &args[1]),
            "load" if args.len() == 1 => (AtomicOpKind::Load, &args[0]),
            "swap" if args.len() == 2 => (AtomicOpKind::Rmw, &args[1]),
            m if m.starts_with("fetch_") && args.len() == 2 => (AtomicOpKind::Rmw, &args[1]),
            m if m.starts_with("compare_exchange") && args.len() >= 4 => {
                (AtomicOpKind::Rmw, &args[2])
            }
            _ => return,
        };
        let Some(ord) = ordering_of(ord_arg) else {
            return;
        };
        let Some(name) = receiver_tail(recv) else {
            return;
        };
        let is_flag = matches!(
            args.first().and_then(|a| self.token_text(a)),
            Some("true") | Some("false")
        );
        self.fact.atomics.push(AtomicFact {
            line,
            op,
            ord,
            is_flag,
            name,
        });
    }

    /// The token span of `e` mentions `needle` as an identifier.
    fn span_mentions(&self, e: &Expr, needle: &str) -> bool {
        let (start, end) = e.span;
        let toks = &self.a.tokens;
        toks[start.min(toks.len())..(end + 1).min(toks.len())]
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == needle)
    }

    /// Mirrors `check_taint_sink`'s skip: macros that lexically mention a
    /// secret identifier are `secret-print`'s findings.
    fn macro_lexically_secret(&self, mac: &Expr) -> bool {
        let (start, end) = mac.span;
        let toks = &self.a.tokens;
        toks[start.min(toks.len())..(end + 1).min(toks.len())]
            .iter()
            .any(|t| {
                t.kind == TokenKind::Ident
                    && secrets::is_secret_ident(&t.text)
                    && !matches!(t.text.as_str(), "write" | "writeln")
            })
    }

    /// Secret taint of `{name}` format-string captures inside a macro.
    fn capture_taint(&self, mac: &Expr) -> Set {
        let (start, end) = mac.span;
        let toks = &self.a.tokens;
        let mut out = Set::default();
        for t in &toks[start.min(toks.len())..(end + 1).min(toks.len())] {
            if t.kind != TokenKind::Literal || !t.text.contains('{') {
                continue;
            }
            for cap in format_captures(&t.text) {
                if let Some(v) = self.env.get(&cap) {
                    out = out.join(&v.t);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Fixpoint
// ---------------------------------------------------------------------------

/// Resolves a symbolic set against the per-call results computed so far.
fn resolve(s: &Set, call_res: &[(bool, u16)]) -> (bool, u16) {
    let mut base = s.base;
    let mut params = s.params;
    for &r in &s.calls {
        if let Some(&(rb, rp)) = call_res.get(r as usize) {
            base |= rb;
            params |= rp;
        }
    }
    (base, params)
}

fn bits(mask: u16) -> impl Iterator<Item = usize> {
    (0..16).filter(move |i| mask & (1 << i) != 0)
}

/// Per-call resolved results for one function under the current
/// summaries: `(secret-domain, length-domain, joined callee summary)`.
type CallResolution = (Vec<(bool, u16)>, Vec<(bool, u16)>, Vec<Option<FnSummary>>);

fn resolve_calls(g: &CallGraph, id: usize, sums: &[FnSummary]) -> CallResolution {
    let node = &g.nodes[id];
    let mut ct: Vec<(bool, u16)> = Vec::with_capacity(node.fact.calls.len());
    let mut cl: Vec<(bool, u16)> = Vec::with_capacity(node.fact.calls.len());
    let mut callee: Vec<Option<FnSummary>> = Vec::with_capacity(node.fact.calls.len());
    for call in &node.fact.calls {
        let cands = g.resolve(&call.callee, node.file);
        if cands.is_empty() {
            // Unresolved extern: fall back to v2 semantics. The secret
            // domain uses the lexical callee-name heuristic plus the
            // "any tainted argument taints the result" rule (wrapping a
            // key in `Ok(..)`/`Some(..)`/an enum variant keeps it a key);
            // the length domain deliberately drops through.
            let mut sec = callee_returns_secret(call.callee.last_segment());
            let mut pm = 0u16;
            for s in &call.args_t {
                let r = resolve(s, &ct);
                sec |= r.0;
                pm |= r.1;
            }
            ct.push((sec, pm));
            cl.push((false, 0));
            callee.push(None);
            continue;
        }
        let cs = cands
            .iter()
            .fold(FnSummary::default(), |acc, &c| acc.join(&sums[c]));
        let mut sec = cs.returns_secret;
        let mut pm = 0u16;
        for i in bits(cs.param_to_ret) {
            if let Some(s) = call.args_t.get(i) {
                let r = resolve(s, &ct);
                sec |= r.0;
                pm |= r.1;
            }
        }
        ct.push((sec, pm));
        let mut len = cs.returns_len;
        let mut lpm = 0u16;
        for i in bits(cs.param_to_ret_len) {
            if let Some(s) = call.args_l.get(i) {
                if !s.checked {
                    let r = resolve(s, &cl);
                    len |= r.0;
                    lpm |= r.1;
                }
            }
        }
        cl.push((len, lpm));
        callee.push(Some(cs));
    }
    (ct, cl, callee)
}

fn summarize_one(g: &CallGraph, id: usize, sums: &[FnSummary]) -> FnSummary {
    let fact = &g.nodes[id].fact;
    let (ct, cl, callees) = resolve_calls(g, id, sums);
    let mut may_panic = fact.local_panic.is_some();
    let mut may_block = fact.local_block.is_some();
    let mut sink_params = 0u16;
    let mut narrow_params = 0u16;
    for (call, cs) in fact.calls.iter().zip(&callees) {
        let Some(cs) = cs else { continue };
        may_panic |= cs.may_panic;
        may_block |= cs.may_block;
        for i in bits(cs.param_to_sink) {
            if let Some(s) = call.args_t.get(i) {
                sink_params |= resolve(s, &ct).1;
            }
        }
        for i in bits(cs.param_narrowed) {
            if let Some(s) = call.args_l.get(i) {
                if !s.checked {
                    narrow_params |= resolve(s, &cl).1;
                }
            }
        }
    }
    let rt = resolve(&fact.ret_t, &ct);
    let st = resolve(&fact.sink_t, &ct);
    let (rl, nl) = (
        if fact.ret_l.checked {
            (false, 0)
        } else {
            resolve(&fact.ret_l, &cl)
        },
        if fact.narrow_l.checked {
            (false, 0)
        } else {
            resolve(&fact.narrow_l, &cl)
        },
    );
    FnSummary {
        returns_secret: rt.0,
        param_to_ret: rt.1,
        param_to_sink: st.1 | sink_params,
        returns_len: rl.0,
        param_to_ret_len: rl.1,
        param_narrowed: nl.1 | narrow_params,
        may_panic,
        may_block,
    }
}

/// Iterates summaries to fixpoint over the graph's SCCs, callees first.
/// Every summary field only ever grows (the join is a union over a finite
/// domain), so each SCC stabilizes; the `8 * |scc| + 8` bound terminates
/// the loop regardless.
pub(crate) fn fixpoint(g: &CallGraph) -> (Vec<FnSummary>, SummaryStats) {
    let n = g.nodes.len();
    let mut sums = vec![FnSummary::default(); n];
    let sccs = g.sccs();
    let mut max_scc = 0;
    for scc in &sccs {
        max_scc = max_scc.max(scc.len());
        let bound = scc.len() * 8 + 8;
        for _ in 0..bound {
            let mut changed = false;
            for &id in scc {
                let new = summarize_one(g, id, &sums);
                if new != sums[id] {
                    sums[id] = new;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
    let stats = SummaryStats {
        fns: n,
        edges: g.edges,
        sccs: sccs.len(),
        max_scc,
    };
    (sums, stats)
}

// ---------------------------------------------------------------------------
// The resolved workspace view
// ---------------------------------------------------------------------------

/// The phase-one product: the call graph, the stabilized summaries, and
/// the indices phase two queries.
pub(crate) struct SummaryCtx {
    pub(crate) graph: CallGraph,
    pub(crate) summaries: Vec<FnSummary>,
    pub(crate) stats: SummaryStats,
    /// Node ids per file index.
    by_file: Vec<Vec<usize>>,
}

impl SummaryCtx {
    pub(crate) fn new(graph: CallGraph, summaries: Vec<FnSummary>, stats: SummaryStats) -> Self {
        let mut by_file = vec![Vec::new(); graph.file_paths.len()];
        for (id, node) in graph.nodes.iter().enumerate() {
            by_file[node.file].push(id);
        }
        SummaryCtx {
            graph,
            summaries,
            stats,
            by_file,
        }
    }

    /// The joined summary of a call's workspace candidates, from the
    /// perspective of `file`; `None` for unresolved externs.
    pub(crate) fn call_summary(&self, key: &CallKey, file: usize) -> Option<FnSummary> {
        let cands = self.graph.resolve(key, file);
        if cands.is_empty() {
            return None;
        }
        Some(
            cands
                .iter()
                .fold(FnSummary::default(), |acc, &c| acc.join(&self.summaries[c])),
        )
    }

    /// Hash over the (name, summary) pairs of every callee a file
    /// resolves to — the dependency half of the phase-two cache key.
    /// Editing a callee changes its summary hash, which changes this
    /// value for every dependent caller file and only them.
    pub(crate) fn file_dep_hash(&self, file: usize) -> u64 {
        let mut parts: Vec<u64> = Vec::new();
        for &id in &self.by_file[file] {
            for call in &self.graph.nodes[id].fact.calls {
                for cand in self.graph.resolve(&call.callee, file) {
                    let name = &self.graph.nodes[cand].fact.name;
                    parts.push(
                        fnv64(name.as_bytes()) ^ self.summaries[cand].hash().rotate_left(1),
                    );
                }
            }
        }
        parts.sort_unstable();
        parts.dedup();
        let mut bytes = Vec::with_capacity(parts.len() * 8);
        for p in parts {
            bytes.extend_from_slice(&p.to_le_bytes());
        }
        fnv64(&bytes)
    }

    /// Struct-literal fields initialized from *intrinsically* secret
    /// values anywhere in the workspace, fully resolved:
    /// `(file, struct_name, field)`. Parameter-only taint does not count —
    /// whether a caller passes key material is the caller's story, and
    /// counting it would demand Drop impls on wrappers whose fields
    /// already zeroize themselves.
    pub(crate) fn secret_struct_inits(&self) -> Vec<(usize, String, String)> {
        let mut out = Vec::new();
        for (id, node) in self.graph.nodes.iter().enumerate() {
            if node.fact.struct_inits.is_empty() {
                continue;
            }
            let (ct, _, _) = resolve_calls(&self.graph, id, &self.summaries);
            for init in &node.fact.struct_inits {
                if resolve(&init.set, &ct).0 {
                    out.push((node.file, init.struct_name.clone(), init.field.clone()));
                }
            }
        }
        out
    }

    /// `panic-reachability`: service worker/connection entry points whose
    /// resolved callees can transitively panic.
    pub(crate) fn panic_reachability_findings(&self) -> Vec<Finding> {
        self.entry_findings(PANIC_ENTRY_SEGS, |s| s.may_panic, |entry, callee| {
            (
                "panic-reachability",
                format!(
                    "service path `{entry}` calls `{callee}`, which can panic; a panic \
                     here kills the worker/connection silently — return an error instead"
                ),
            )
        })
    }

    /// `blocking-in-worker`: queue workers whose resolved callees reach
    /// blocking socket IO.
    pub(crate) fn blocking_in_worker_findings(&self) -> Vec<Finding> {
        let mut out = self.entry_findings(WORKER_ENTRY_SEGS, |s| s.may_block, |entry, callee| {
            (
                "blocking-in-worker",
                format!(
                    "queue worker `{entry}` calls `{callee}`, which performs blocking \
                     socket IO; a slow peer stalls every queued job — move the IO to \
                     the connection path"
                ),
            )
        });
        // A worker doing the blocking read itself.
        for node in &self.graph.nodes {
            let path = &self.graph.file_paths[node.file];
            if !Self::entry_file(path) || !Self::entry_name(&node.fact.name, WORKER_ENTRY_SEGS) {
                continue;
            }
            if let Some(line) = node.fact.local_block {
                out.push(Finding {
                    file: path.clone(),
                    line,
                    rule: "blocking-in-worker",
                    message: format!(
                        "queue worker `{}` performs blocking socket IO; a slow peer \
                         stalls every queued job — move the IO to the connection path",
                        node.fact.name
                    ),
                    item: Some(node.fact.name.clone()),
                });
            }
        }
        out
    }

    fn entry_file(path: &str) -> bool {
        matches!(classify(path), FileKind::Lib | FileKind::Bin)
            && IO_SCOPED_PATHS.iter().any(|p| path.contains(p))
    }

    fn entry_name(name: &str, segs: &[&str]) -> bool {
        let local = name.rsplit("::").next().unwrap_or(name);
        seg_matches(local, segs)
    }

    fn entry_findings(
        &self,
        entry_segs: &[&str],
        flag: impl Fn(&FnSummary) -> bool,
        describe: impl Fn(&str, &str) -> (&'static str, String),
    ) -> Vec<Finding> {
        let mut out = Vec::new();
        for node in &self.graph.nodes {
            let path = &self.graph.file_paths[node.file];
            if !Self::entry_file(path) || !Self::entry_name(&node.fact.name, entry_segs) {
                continue;
            }
            for call in &node.fact.calls {
                let Some(cs) = self.call_summary(&call.callee, node.file) else {
                    continue;
                };
                if !flag(&cs) {
                    continue;
                }
                let callee = call.callee.display();
                let (rule, message) = describe(&node.fact.name, &callee);
                out.push(Finding {
                    file: path.clone(),
                    line: call.line,
                    rule,
                    message,
                    item: Some(callee),
                });
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Cache serialization
// ---------------------------------------------------------------------------

/// Serializes one function's facts as cache body lines (`N` for the
/// function, `C` per call, `I` per tainted struct init, `S`/`H`/`O`/`A`
/// for the v4 spawn/channel/chan-op/atomic facts).
pub(crate) fn serialize_fact(fact: &FnFact, out: &mut String, esc: impl Fn(&str) -> String) {
    out.push_str(&format!(
        "N\t{}\t{}\t{}\t{}\t{:04x}\t{:04x}\t{}\t{}\t{}\t{}\t{}\n",
        fact.line,
        fact.local_panic.map_or("-".to_string(), |l| l.to_string()),
        fact.local_block.map_or("-".to_string(), |l| l.to_string()),
        fact.local_sleep.map_or("-".to_string(), |l| l.to_string()),
        fact.param_send,
        fact.param_recv,
        fact.ret_t.serialize(),
        fact.ret_l.serialize(),
        fact.sink_t.serialize(),
        fact.narrow_l.serialize(),
        esc(&fact.name),
    ));
    for c in &fact.calls {
        let join = |sets: &[Set]| -> String {
            if sets.is_empty() {
                "-".to_string()
            } else {
                sets.iter()
                    .map(Set::serialize)
                    .collect::<Vec<_>>()
                    .join("|")
            }
        };
        let ids = if c.args_id.is_empty() {
            "-".to_string()
        } else {
            c.args_id.join("|")
        };
        out.push_str(&format!(
            "C\t{}\t{}\t{}\t{}\t{}\n",
            c.line,
            esc(&c.callee.serialize()),
            join(&c.args_t),
            join(&c.args_l),
            ids,
        ));
    }
    for i in &fact.struct_inits {
        out.push_str(&format!(
            "I\t{}\t{}\t{}\n",
            i.set.serialize(),
            esc(&i.struct_name),
            esc(&i.field),
        ));
    }
    for s in &fact.spawns {
        out.push_str(&format!(
            "S\t{}\t{}\t{}\t{}\n",
            s.line,
            u8::from(s.scoped),
            u8::from(s.leaked),
            esc(&s.closure),
        ));
    }
    for ch in &fact.channels {
        let kind = match ch.kind {
            ChanKind::Rendezvous => "r",
            ChanKind::Bounded => "b",
            ChanKind::Unbounded => "u",
        };
        out.push_str(&format!(
            "H\t{}\t{}\t{}\t{}\n",
            ch.line,
            kind,
            esc(&ch.tx),
            esc(&ch.rx),
        ));
    }
    for op in &fact.chan_ops {
        let kind = match op.op {
            ChanOpKind::Send => "s",
            ChanOpKind::TrySend => "ts",
            ChanOpKind::Recv => "r",
            ChanOpKind::TryRecv => "tr",
            ChanOpKind::RecvTimeout => "rt",
        };
        out.push_str(&format!(
            "O\t{}\t{}\t{}\t{}\n",
            op.line,
            kind,
            u8::from(op.unwrapped),
            esc(&op.endpoint),
        ));
    }
    for at in &fact.atomics {
        let op = match at.op {
            AtomicOpKind::Store => "s",
            AtomicOpKind::Load => "l",
            AtomicOpKind::Rmw => "m",
        };
        let ord = match at.ord {
            AtomicOrd::Relaxed => "x",
            AtomicOrd::Acquire => "a",
            AtomicOrd::Release => "r",
            AtomicOrd::AcqRel => "ar",
            AtomicOrd::SeqCst => "sc",
        };
        out.push_str(&format!(
            "A\t{}\t{}\t{}\t{}\t{}\n",
            at.line,
            op,
            ord,
            u8::from(at.is_flag),
            esc(&at.name),
        ));
    }
}

fn parse_opt_line(s: &str) -> Option<Option<u32>> {
    if s == "-" {
        Some(None)
    } else {
        s.parse().ok().map(Some)
    }
}

fn parse_sets(s: &str) -> Option<Vec<Set>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split('|').map(Set::deserialize).collect()
}

/// Parses the body lines written by [`serialize_fact`] back into facts.
/// `None` on any anomaly, making the whole record invalid.
pub(crate) fn parse_facts<'a>(
    lines: impl Iterator<Item = &'a str>,
    unesc: impl Fn(&str) -> String,
) -> Option<Vec<FnFact>> {
    let mut out: Vec<FnFact> = Vec::new();
    for line in lines {
        let mut parts = line.split('\t');
        match parts.next()? {
            "N" => {
                let line_no: u32 = parts.next()?.parse().ok()?;
                let local_panic = parse_opt_line(parts.next()?)?;
                let local_block = parse_opt_line(parts.next()?)?;
                let local_sleep = parse_opt_line(parts.next()?)?;
                let param_send = u16::from_str_radix(parts.next()?, 16).ok()?;
                let param_recv = u16::from_str_radix(parts.next()?, 16).ok()?;
                let ret_t = Set::deserialize(parts.next()?)?;
                let ret_l = Set::deserialize(parts.next()?)?;
                let sink_t = Set::deserialize(parts.next()?)?;
                let narrow_l = Set::deserialize(parts.next()?)?;
                let name = unesc(parts.next()?);
                out.push(FnFact {
                    name,
                    line: line_no,
                    local_panic,
                    local_block,
                    local_sleep,
                    param_send,
                    param_recv,
                    calls: Vec::new(),
                    spawns: Vec::new(),
                    channels: Vec::new(),
                    chan_ops: Vec::new(),
                    atomics: Vec::new(),
                    ret_t,
                    ret_l,
                    sink_t,
                    narrow_l,
                    struct_inits: Vec::new(),
                });
            }
            "C" => {
                let fact = out.last_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let callee = CallKey::deserialize(&unesc(parts.next()?))?;
                let args_t = parse_sets(parts.next()?)?;
                let args_l = parse_sets(parts.next()?)?;
                let ids_field = parts.next()?;
                let args_id: Vec<String> = if ids_field == "-" {
                    Vec::new()
                } else {
                    ids_field.split('|').map(str::to_string).collect()
                };
                if args_id.len() != args_t.len() {
                    return None;
                }
                fact.calls.push(CallFact {
                    callee,
                    line: line_no,
                    args_t,
                    args_l,
                    args_id,
                });
            }
            "I" => {
                let fact = out.last_mut()?;
                let set = Set::deserialize(parts.next()?)?;
                let struct_name = unesc(parts.next()?);
                let field = unesc(parts.next()?);
                fact.struct_inits.push(StructInit {
                    struct_name,
                    field,
                    set,
                });
            }
            "S" => {
                let fact = out.last_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let scoped = parts.next()? == "1";
                let leaked = parts.next()? == "1";
                let closure = unesc(parts.next()?);
                fact.spawns.push(SpawnFact {
                    line: line_no,
                    closure,
                    scoped,
                    leaked,
                });
            }
            "H" => {
                let fact = out.last_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let kind = match parts.next()? {
                    "r" => ChanKind::Rendezvous,
                    "b" => ChanKind::Bounded,
                    "u" => ChanKind::Unbounded,
                    _ => return None,
                };
                let tx = unesc(parts.next()?);
                let rx = unesc(parts.next()?);
                fact.channels.push(ChannelFact {
                    line: line_no,
                    kind,
                    tx,
                    rx,
                });
            }
            "O" => {
                let fact = out.last_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let op = match parts.next()? {
                    "s" => ChanOpKind::Send,
                    "ts" => ChanOpKind::TrySend,
                    "r" => ChanOpKind::Recv,
                    "tr" => ChanOpKind::TryRecv,
                    "rt" => ChanOpKind::RecvTimeout,
                    _ => return None,
                };
                let unwrapped = parts.next()? == "1";
                let endpoint = unesc(parts.next()?);
                fact.chan_ops.push(ChanOp {
                    line: line_no,
                    op,
                    unwrapped,
                    endpoint,
                });
            }
            "A" => {
                let fact = out.last_mut()?;
                let line_no: u32 = parts.next()?.parse().ok()?;
                let op = match parts.next()? {
                    "s" => AtomicOpKind::Store,
                    "l" => AtomicOpKind::Load,
                    "m" => AtomicOpKind::Rmw,
                    _ => return None,
                };
                let ord = match parts.next()? {
                    "x" => AtomicOrd::Relaxed,
                    "a" => AtomicOrd::Acquire,
                    "r" => AtomicOrd::Release,
                    "ar" => AtomicOrd::AcqRel,
                    "sc" => AtomicOrd::SeqCst,
                    _ => return None,
                };
                let is_flag = parts.next()? == "1";
                let name = unesc(parts.next()?);
                fact.atomics.push(AtomicFact {
                    line: line_no,
                    op,
                    ord,
                    is_flag,
                    name,
                });
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_source;

    fn facts(path: &str, src: &str) -> Vec<FnFact> {
        extract(&analyze_source(path, src))
    }

    fn graph_of(sources: &[(&str, &str)]) -> CallGraph {
        let paths: Vec<String> = sources.iter().map(|(p, _)| p.to_string()).collect();
        let all: Vec<Vec<FnFact>> = sources.iter().map(|(p, s)| facts(p, s)).collect();
        CallGraph::build(paths, all)
    }

    #[test]
    fn set_serialization_round_trips() {
        let s = Set {
            base: true,
            checked: false,
            params: 0b101,
            calls: vec![0, 7],
        };
        assert_eq!(Set::deserialize(&s.serialize()), Some(s));
        assert_eq!(Set::deserialize(&Set::default().serialize()), Some(Set::default()));
        assert_eq!(Set::deserialize("garbage"), None);
    }

    #[test]
    fn fact_serialization_round_trips() {
        let src = "pub fn export(s: &State) -> Vec<u8> { let k = s.master_key.clone(); k }\n\
                   pub fn show(v: &[u8]) { println!(\"{:?}\", v); }";
        let original = facts("crates/x/src/a.rs", src);
        assert_eq!(original.len(), 2);
        let mut body = String::new();
        for f in &original {
            serialize_fact(f, &mut body, |s| s.to_string());
        }
        let parsed = parse_facts(body.lines(), |s| s.to_string()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn returns_secret_flows_through_field_read() {
        let f = facts(
            "crates/x/src/a.rs",
            "pub fn export(s: &State) -> Vec<u8> { s.master_key.clone() }",
        );
        let g = CallGraph::build(vec!["crates/x/src/a.rs".into()], vec![f]);
        let (sums, _) = fixpoint(&g);
        assert!(sums[0].returns_secret);
    }

    #[test]
    fn param_flows_to_return_and_sink() {
        let f = facts(
            "crates/x/src/a.rs",
            "pub fn id(v: u64) -> u64 { v }\n\
             pub fn show(label: &str, v: u64) { println!(\"{}: {}\", label, v); }",
        );
        let g = CallGraph::build(vec!["crates/x/src/a.rs".into()], vec![f]);
        let (sums, _) = fixpoint(&g);
        assert_eq!(sums[0].param_to_ret, 0b1);
        assert!(!sums[0].returns_secret);
        assert_eq!(sums[1].param_to_sink, 0b11);
    }

    #[test]
    fn summaries_cross_function_boundaries() {
        let g = graph_of(&[(
            "crates/x/src/a.rs",
            "fn inner(s: &State) -> Vec<u8> { s.round_keys.to_vec() }\n\
             fn middle(s: &State) -> Vec<u8> { inner(s) }\n\
             pub fn outer(s: &State) -> Vec<u8> { middle(s) }",
        )]);
        let (sums, stats) = fixpoint(&g);
        assert!(sums.iter().all(|s| s.returns_secret), "{sums:?}");
        assert_eq!(stats.fns, 3);
        assert_eq!(stats.sccs, 3);
        assert_eq!(stats.max_scc, 1);
    }

    #[test]
    fn mutual_recursion_reaches_fixpoint() {
        // ping/pong call each other; the secret enters through `fetch`.
        let g = graph_of(&[(
            "crates/x/src/a.rs",
            "fn fetch(s: &S) -> u64 { s.boot_seed }\n\
             fn ping(s: &S, n: u32) -> u64 { if n == 0 { fetch(s) } else { pong(s, n) } }\n\
             fn pong(s: &S, n: u32) -> u64 { ping(s, n) }",
        )]);
        let (sums, stats) = fixpoint(&g);
        assert!(sums[1].returns_secret, "ping: {sums:?}");
        assert!(sums[2].returns_secret, "pong: {sums:?}");
        assert_eq!(stats.max_scc, 2, "ping/pong form one SCC");
    }

    #[test]
    fn self_recursive_panic_propagates_and_terminates() {
        let g = graph_of(&[(
            "crates/x/src/bin/tool.rs",
            "fn descend(n: u32) -> u32 { if n == 0 { head().unwrap() } else { descend(n) } }\n\
             fn head() -> Option<u32> { None }\n\
             fn top(n: u32) -> u32 { descend(n) }",
        )]);
        let (sums, _) = fixpoint(&g);
        assert!(sums[0].may_panic);
        assert!(sums[2].may_panic, "panic propagates through recursion");
        assert!(!sums[1].may_panic);
    }

    #[test]
    fn length_taint_propagates_through_helpers() {
        let g = graph_of(&[(
            "crates/x/src/a.rs",
            "fn span(buf: &[u8]) -> usize { buf.len() }\n\
             fn narrow(n: usize) -> u32 { n as u32 }\n\
             fn narrow_checked(n: usize) -> u32 { (n & 0xffff) as u32 }",
        )]);
        let (sums, _) = fixpoint(&g);
        assert!(sums[0].returns_len);
        assert_eq!(sums[1].param_narrowed, 0b1);
        assert_eq!(sums[2].param_narrowed, 0, "masked cast is checked");
    }

    #[test]
    fn suppressed_panic_is_not_reachability_gen() {
        let f = facts(
            "crates/x/src/a.rs",
            "pub fn a() {\n    // lint:allow(panic): checked above\n    x.unwrap();\n}\n\
             pub fn b() { y.unwrap(); }",
        );
        assert_eq!(f[0].local_panic, None);
        assert_eq!(f[1].local_panic, Some(5));
    }

    #[test]
    fn extraction_skips_tests_and_test_files() {
        assert!(facts("crates/x/tests/t.rs", "fn helper() { x.unwrap(); }").is_empty());
        let f = facts(
            "crates/x/src/a.rs",
            "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\npub fn real() {}",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "real");
    }

    #[test]
    fn worker_reaching_socket_read_is_flagged() {
        let g = graph_of(&[(
            "crates/x/src/service.rs",
            "fn drain(stream: &mut TcpStream) -> usize {\n\
                 let mut b = [0u8; 64];\n\
                 stream.read(&mut b).unwrap_or(0)\n\
             }\n\
             pub fn worker_loop(stream: &mut TcpStream) { let _n = drain(stream); }",
        )]);
        let (sums, stats) = fixpoint(&g);
        let ctx = SummaryCtx::new(g, sums, stats);
        let found = ctx.blocking_in_worker_findings();
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, "blocking-in-worker");
        assert!(found[0].message.contains("worker_loop"));
        // The same graph, entered from a connection handler, is fine.
        assert!(ctx.panic_reachability_findings().is_empty());
    }
}
