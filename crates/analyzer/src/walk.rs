//! Workspace traversal: collects every `.rs` file under the workspace
//! root, skipping build output, VCS metadata, and the analyzer's own lint
//! fixtures (which contain deliberate violations).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::engine::SourceFile;

/// Directory names that are never walked.
const SKIP_DIRS: &[&str] = &["target", ".git", ".claude", "fixtures"];

/// Reads every workspace `.rs` file into memory, with paths relative to
/// `root` using `/` separators, sorted for deterministic output.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, &mut paths)?;
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let source = fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        out.push(SourceFile { path: rel, source });
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let file_type = entry.file_type()?;
        if file_type.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if file_type.is_file() && name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
