//! A lightweight hand-rolled Rust lexer.
//!
//! The rule engine only needs a faithful *token stream with line numbers*:
//! it never builds an AST. The lexer therefore concentrates on the places a
//! naive text scan goes wrong — string literals (including raw and byte
//! strings), char literals vs. lifetimes, nested block comments, and doc
//! comments — so that a `println!` inside a doc example or a `"master_key"`
//! string literal is never mistaken for code.
//!
//! Comments are not discarded: they are collected separately so the
//! suppression pass can find `// lint:allow(rule): reason` annotations.

/// The coarse class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `key_schedule`, `as`, ...).
    Ident,
    /// Punctuation. Multi-character operators are fused when the parser or
    /// a rule needs to see them as one token (`==` `!=` `<=` `>=` `&&`
    /// `||` `->` `=>` `::`); everything else is emitted one character at a
    /// time (`<<`/`>>` deliberately stay split so generic argument lists
    /// lex the same as shifts).
    Punct,
    /// String, char, byte-string, or numeric literal. String literals keep
    /// their raw text (the secret-print rule scans them for `{ident}`
    /// inline format captures); identifier-based rules only ever look at
    /// [`TokenKind::Ident`] tokens, so words inside messages cannot trip
    /// them.
    Literal,
    /// A lifetime such as `'a` (kept distinct so it is never confused with
    /// a char literal).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text (empty for string literals).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

/// A comment captured during lexing (line or block), for suppression scans.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments. The lexer is total: malformed
/// input degrades to single-character punctuation tokens rather than
/// failing, which is the right trade-off for a lint pass.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_whitespace() => self.pos += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                c if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_literal(),
                c if c.is_ascii_digit() => self.number(),
                '"' => self.string_literal(),
                '\'' => self.char_or_lifetime(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0);
        if let Some(ch) = c {
            if ch == '\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        c
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.tokens.push(Token { kind, text, line });
    }

    fn line_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.pos += 1;
        }
        self.out.comments.push(Comment {
            text,
            line: start,
            end_line: start,
        });
    }

    fn block_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.pos += 2;
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if c == '\n' {
                    self.line += 1;
                }
                text.push(c);
                self.pos += 1;
            }
        }
        self.out.comments.push(Comment {
            text,
            line: start,
            end_line: self.line,
        });
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        // Raw/byte string prefixes: r", r#", b", br", rb is not valid Rust.
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let is_raw = |c: Option<char>| c == Some('"') || c == Some('#');
        // `r#ident` is a *raw identifier*, not a raw string: only a `#`
        // run ending in `"` introduces a string. Mistaking `r#fn` for a
        // string used to swallow the rest of the file.
        let raw_ident = c0 == Some('r')
            && c1 == Some('#')
            && c2.map_or(false, |c| c.is_alphabetic() || c == '_');
        if c0 == Some('r') && is_raw(c1) && !raw_ident {
            self.pos += 1;
            self.raw_string_literal(line);
            return;
        }
        if raw_ident {
            self.pos += 2; // the ident text is what rules match against
        }
        if c0 == Some('b') && c1 == Some('"') {
            self.pos += 1;
            self.string_literal();
            return;
        }
        if c0 == Some('b') && c1 == Some('r') && is_raw(c2) {
            self.pos += 2;
            self.raw_string_literal(line);
            return;
        }
        if c0 == Some('b') && c1 == Some('\'') {
            self.pos += 1;
            self.char_or_lifetime();
            return;
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.pos += 1;
            } else if c == '.'
                && self.peek(1).map_or(false, |n| n.is_ascii_digit())
                && !text.contains('.')
            {
                // Float like `12.5`, but never eat the `..` of a range.
                text.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Literal, text, line);
    }

    fn string_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Keep the escape pair verbatim; format-capture scanning
                    // only cares about unescaped `{`.
                    text.push('\\');
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push_token(TokenKind::Literal, text, line);
    }

    fn raw_string_literal(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.pos += 1;
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        // Not the terminator (`"#` inside `r##"..."##`):
                        // the quote is literal body text.
                        text.push('"');
                        continue 'outer;
                    }
                }
                self.pos += hashes;
                break;
            }
            text.push(c);
        }
        self.push_token(TokenKind::Literal, text, line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        let first = self.peek(0);
        let second = self.peek(1);
        let is_char = match first {
            Some('\\') => true,
            Some(_) => second == Some('\''),
            None => false,
        };
        if is_char {
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push_token(TokenKind::Literal, String::new(), line);
        } else {
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.push_token(TokenKind::Lifetime, text, line);
        }
    }

    fn punct(&mut self) {
        let line = self.line;
        let c = match self.bump() {
            Some(c) => c,
            None => return,
        };
        // Fuse the operators the parser and rules must see whole:
        // `==` `!=` `<=` `>=` `&&` `||` `->` `=>` `::`. Everything else —
        // notably `<<`/`>>`, which would collide with generics — stays one
        // character per token.
        let fused = match (c, self.peek(0)) {
            ('=', Some('=')) | ('!', Some('=')) | ('<', Some('=')) | ('>', Some('=')) => true,
            ('&', Some('&')) | ('|', Some('|')) => true,
            ('-', Some('>')) | ('=', Some('>')) => true,
            (':', Some(':')) => true,
            _ => false,
        };
        if fused {
            if let Some(second) = self.peek(0) {
                self.pos += 1;
                self.push_token(TokenKind::Punct, format!("{c}{second}"), line);
                return;
            }
        }
        self.push_token(TokenKind::Punct, c.to_string(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            texts("let x = a == b;"),
            vec!["let", "x", "=", "a", "==", "b", ";"]
        );
    }

    #[test]
    fn string_contents_are_literals_not_idents() {
        let lexed = lex(r#"println!("master_key {x}")"#);
        let idents: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(idents, vec!["println"]);
        // The string body is retained on the Literal token for
        // format-capture scanning.
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text.contains("{x}")));
    }

    #[test]
    fn raw_and_byte_strings() {
        let lexed = lex(r##"let s = r#"key "inner""#; let b = b"key";"##);
        assert!(!lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text.contains("key")));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let lexed = lex("code(); // lint:allow(panic): fine\n/* block\nkey */ more();");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("lint:allow"));
        assert_eq!(lexed.comments[1].line, 2);
        assert_eq!(lexed.comments[1].end_line, 3);
        assert!(!lexed.tokens.iter().any(|t| t.text == "key"));
    }

    #[test]
    fn doc_comment_examples_are_comments() {
        let lexed = lex("/// let k = v.expect(\"x\");\nfn real() {}");
        assert!(!lexed.tokens.iter().any(|t| t.text == "expect"));
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn ranges_are_not_floats() {
        assert_eq!(texts("0..n"), vec!["0", ".", ".", "n"]);
        assert_eq!(texts("12.5"), vec!["12.5"]);
    }

    #[test]
    fn line_numbers_track() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ token");
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].text, "token");
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        // `r#fn` once lexed as an unterminated raw string and swallowed
        // the rest of the file.
        assert_eq!(texts("let r#fn = 1; after"), vec!["let", "fn", "=", "1", ";", "after"]);
    }

    #[test]
    fn fused_operators() {
        assert_eq!(
            texts("a && b || c -> d => e::f"),
            vec!["a", "&&", "b", "||", "c", "->", "d", "=>", "e", "::", "f"]
        );
        // Shifts stay split so `Vec<Vec<u8>>` closes two generic lists.
        assert_eq!(texts("x >> 2"), vec!["x", ">", ">", "2"]);
    }

    #[test]
    fn raw_string_hashes_round_trip_with_lines() {
        let lexed = lex("let a = r##\"one \"# two\nthree\"##;\nnext");
        let lit = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Literal)
            .unwrap();
        assert_eq!(lit.text, "one \"# two\nthree");
        assert_eq!(lit.line, 1);
        let next = lexed.tokens.iter().find(|t| t.text == "next").unwrap();
        assert_eq!(next.line, 3);
    }

    #[test]
    fn lifetime_lines_round_trip() {
        let lexed = lex("fn f<'a>(\n    x: &'a str,\n) {}");
        let lt: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lt.len(), 2);
        assert_eq!(lt[0].line, 1);
        assert_eq!(lt[1].line, 2);
        assert_eq!(lt[0].text, "'a");
    }
}
