//! The paper's Table I: the machines whose scramblers were analyzed —
//! plus the simulated configurations standing in for them.

use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy)]
pub struct TestedMachine {
    /// CPU model string.
    pub cpu_model: &'static str,
    /// Microarchitecture (selects the scrambler generation and address
    /// mapping).
    pub uarch: Microarchitecture,
    /// Launch date as the paper lists it.
    pub launch: &'static str,
}

/// The five machines of Table I.
pub const TABLE1: [TestedMachine; 5] = [
    TestedMachine {
        cpu_model: "i5-2540M (DDR3)",
        uarch: Microarchitecture::SandyBridge,
        launch: "Q1, 2011",
    },
    TestedMachine {
        cpu_model: "i5-2430M (DDR3)",
        uarch: Microarchitecture::SandyBridge,
        launch: "Q4, 2011",
    },
    TestedMachine {
        cpu_model: "i7-3540M (DDR3)",
        uarch: Microarchitecture::IvyBridge,
        launch: "Q1, 2013",
    },
    TestedMachine {
        cpu_model: "i5-6400 (DDR4)",
        uarch: Microarchitecture::Skylake,
        launch: "Q3, 2015",
    },
    TestedMachine {
        cpu_model: "i5-6600K (DDR4)",
        uarch: Microarchitecture::Skylake,
        launch: "Q3, 2015",
    },
];

impl TestedMachine {
    /// A full-size simulated geometry appropriate for this machine.
    pub fn geometry(&self) -> DramGeometry {
        match self.uarch {
            Microarchitecture::SandyBridge | Microarchitecture::IvyBridge => {
                DramGeometry::ddr3_dual_channel_4gib()
            }
            Microarchitecture::Skylake => DramGeometry::ddr4_dual_channel_8gib(),
        }
    }
}

/// A small geometry (1 MiB) used by experiment binaries that sweep whole
/// memories; observable scrambler behaviour (key pool size, invariants,
/// reboot behaviour) is identical to the full-size configurations.
pub fn micro_geometry() -> DramGeometry {
    DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    }
}

/// A medium geometry (16 MiB) for the heavier end-to-end runs.
pub fn medium_geometry() -> DramGeometry {
    DramGeometry::tiny_test()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_the_papers_five_machines() {
        assert_eq!(TABLE1.len(), 5);
        let ddr4 = TABLE1
            .iter()
            .filter(|m| m.uarch == Microarchitecture::Skylake)
            .count();
        assert_eq!(ddr4, 2);
    }

    #[test]
    fn geometries_are_valid() {
        for m in &TABLE1 {
            assert!(m.geometry().is_power_of_two_shaped());
        }
        assert_eq!(micro_geometry().capacity_bytes(), 1 << 20);
        assert_eq!(medium_geometry().capacity_bytes(), 16 << 20);
    }
}
