//! Minimal aligned-column table printing for the regeneration binaries.

/// Renders a header row plus data rows with aligned columns.
///
/// ```
/// let out = coldboot_bench::table::render(
///     &["cipher", "ns"],
///     &[vec!["ChaCha8".into(), "9.18".into()]],
/// );
/// assert!(out.contains("ChaCha8"));
/// ```
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row has wrong number of columns");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            if i + 1 < cells.len() {
                line.push_str("  ");
            }
        }
        line.trim_end().to_string()
    };
    let headers_owned: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Prints a rendered table with a title banner.
pub fn print(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    print!("{}", render(headers, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let out = render(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer-cell".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("x "));
    }

    #[test]
    #[should_panic(expected = "wrong number of columns")]
    fn rejects_ragged_rows() {
        render(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
