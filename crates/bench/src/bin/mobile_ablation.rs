//! Ablation of the §IV-B "Speed vs Area and Power" design choice: fully
//! pipelined engines (Table II) vs the time-multiplexed variant the paper
//! recommends for mobile CPUs ("more energy-efficient memory encryption can
//! be achieved by using cipher engines that have much lower performance").

use coldboot_bench::table;
use coldboot_dram::timing::DDR4_MIN_CAS_NS;
use coldboot_memenc::engine::{CipherEngineSpec, EngineKind};
use coldboot_memenc::power::{overhead_for_spec, FIGURE7_CPUS};

fn main() {
    let atom = FIGURE7_CPUS[0];
    let mut rows = Vec::new();
    for kind in EngineKind::ALL {
        for (label, spec) in [
            ("pipelined", CipherEngineSpec::for_kind(kind)),
            ("time-mux", CipherEngineSpec::time_multiplexed(kind)),
        ] {
            let o_full = overhead_for_spec(&atom, &spec, 1.0);
            let o_low = overhead_for_spec(&atom, &spec, 0.2);
            rows.push(vec![
                kind.name().to_string(),
                label.to_string(),
                format!("{:.2}", spec.block_latency_ns()),
                if spec.block_latency_ns() < DDR4_MIN_CAS_NS {
                    "yes".into()
                } else {
                    "no".into()
                },
                format!("{:.1}", spec.throughput_gbps()),
                format!("{:.2}", o_full.area_pct),
                format!("{:.2}", o_full.power_pct),
                format!("{:.2}", o_low.power_pct),
            ]);
        }
    }
    table::print(
        "Mobile ablation (Atom N280): pipelined vs time-multiplexed engines",
        &[
            "cipher",
            "style",
            "64B latency ns",
            "hidden @min CAS",
            "peak GB/s",
            "area %",
            "power % @100%",
            "power % @20%",
        ],
        &rows,
    );
    println!(
        "\nThe time-multiplexed ChaCha8 keeps its unloaded latency (one \
         counter per block, same 18-cycle iteration) while cutting the Atom \
         power overhead by more than half — the paper's mobile trade-off. \
         AES variants lose latency hiding when time-multiplexed because \
         each 64-byte block needs four serialized passes."
    );
}
