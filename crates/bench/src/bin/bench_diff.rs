//! `bench-diff`: flag >10% perf regressions in the bench trajectory.
//!
//! Reads `BENCH_history.jsonl` (first argument overrides the path) and
//! compares the latest record of every bench against its immediate
//! predecessor. Exits 1 when any field got more than 10% worse, so CI can
//! gate on it right after a bench run appended its record.

use std::path::PathBuf;
use std::process::ExitCode;

use coldboot_bench::history::{self, Regression};

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from(history::HISTORY_FILE), PathBuf::from);
    let regressions = match history::diff_latest(&path) {
        Ok(r) => r,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("bench-diff: {} not found; nothing to compare", path.display());
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("bench-diff: failed to read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    if regressions.is_empty() {
        println!("bench-diff: no regressions >10% vs previous records");
        return ExitCode::SUCCESS;
    }
    println!("bench-diff: {} regression(s) >10%:", regressions.len());
    for r in &regressions {
        let Regression {
            bench,
            field,
            previous,
            latest,
        } = r;
        println!(
            "  {bench}.{field}: {previous:.3} -> {latest:.3} ({:+.1}%)",
            r.severity() * 100.0
        );
    }
    ExitCode::FAILURE
}
