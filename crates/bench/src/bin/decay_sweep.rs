//! Ablation: attack success vs transfer decay (§III-C "Tolerating Data
//! Loss" + §III-D). The paper reports modules retaining 90–99 % of their
//! charge at −25 °C; this sweep shows where in that band the attack's
//! decay tolerance gives out, and how much freezing matters.
//!
//! Usage: `decay_sweep [--deep]` — `--deep` additionally re-runs each
//! scenario with `SearchConfig::deep()` (~10× slower), which extends the
//! envelope through the middle of the retention band.

use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot_bench::machines::micro_geometry;
use coldboot_bench::table;
use coldboot_bench::workload::{fill_realistic, WorkloadMix};
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::{bit_errors, DecayModel};
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Scenario {
    label: &'static str,
    freeze_c: f64,
    transfer_s: f64,
    quality: f64,
}

const SCENARIOS: [Scenario; 6] = [
    Scenario { label: "-50C, 5s, nominal module", freeze_c: -50.0, transfer_s: 5.0, quality: 1.0 },
    Scenario { label: "-25C, 5s, retentive module", freeze_c: -25.0, transfer_s: 5.0, quality: 0.35 },
    Scenario { label: "-25C, 5s, nominal module", freeze_c: -25.0, transfer_s: 5.0, quality: 1.0 },
    Scenario { label: "-25C, 15s, retentive module", freeze_c: -25.0, transfer_s: 15.0, quality: 0.35 },
    Scenario { label: "-25C, 5s, leaky module", freeze_c: -25.0, transfer_s: 5.0, quality: 4.0 },
    Scenario { label: "+20C, 3s (no freezing)", freeze_c: 20.0, transfer_s: 3.0, quality: 1.0 },
];

fn run_scenario(s: &Scenario, seed: u64, deep: bool) -> (f64, usize, usize) {
    let geometry = micro_geometry();
    let volume = Volume::create(b"pw", b"sweep secret", &mut StdRng::seed_from_u64(seed));
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), seed);
    let size = victim.capacity() as usize;
    victim
        .insert_module(DramModule::with_quality(size, seed, s.quality))
        .expect("fresh socket");
    fill_realistic(&mut victim, WorkloadMix::mostly_idle(), seed).expect("module present");
    MountedVolume::mount(&mut victim, &volume, b"pw", 0x4_0040).expect("mountable");
    let pristine = victim.module().expect("socketed").contents().to_vec();

    let mut attacker =
        Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), seed + 500);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams {
            freeze_celsius: s.freeze_c,
            transfer_seconds: s.transfer_s,
        },
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    let errs = bit_errors(&pristine, attacker.module().expect("socketed").contents());
    let error_rate = errs as f64 / (pristine.len() as f64 * 8.0);

    let config = AttackConfig {
        search: if deep {
            coldboot::keysearch::SearchConfig::deep()
        } else {
            Default::default()
        },
        ..Default::default()
    };
    let report = run_ddr4_attack(&dump, &config);
    (
        error_rate,
        report.candidates.len(),
        report.outcome.recovered.len(),
    )
}

fn main() {
    let deep = std::env::args().any(|a| a == "--deep");
    let mut rows = Vec::new();
    for (i, s) in SCENARIOS.iter().enumerate() {
        let (error_rate, candidates, recovered) = run_scenario(s, 100 + i as u64, false);
        let mut row = vec![
            s.label.to_string(),
            format!("{:.3}%", 100.0 * error_rate),
            candidates.to_string(),
            recovered.to_string(),
            if recovered >= 2 { "SUCCESS" } else { "failed" }.to_string(),
        ];
        if deep {
            let (_, _, deep_recovered) = run_scenario(s, 100 + i as u64, true);
            row.push(if deep_recovered >= 2 { "SUCCESS" } else { "failed" }.to_string());
        }
        rows.push(row);
    }
    let mut headers = vec!["scenario", "bit error rate", "mined keys", "recovered", "outcome"];
    if deep {
        headers.push("deep outcome");
    }
    table::print(
        "Attack success vs transfer decay (target: both XTS schedules)",
        &headers,
        &rows,
    );
    println!(
        "\nShape: key mining survives everywhere the DIMM was frozen \
         (majority voting repairs decayed keys), but the default AES search \
         needs a clean 32-byte expansion window, which runs out around \
         ~1% bit error. SearchConfig::deep() (--deep) pushes the envelope \
         through ~1.5% at ~10x scan cost. Without freezing, nothing survives."
    );
}
