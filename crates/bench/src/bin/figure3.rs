//! Regenerates the paper's **Figure 3** — the visual comparison of DDR3 and
//! DDR4 scrambling — as both PGM images and quantitative correlation
//! metrics.
//!
//! Panels:
//! (a) the original image in plaintext memory;
//! (b) raw DDR3-scrambled cells (ghosts visible: 16 keys/channel);
//! (c) DDR3 data read back after a reboot (universal-key collapse: the
//!     picture reappears, XORed with one constant block);
//! (d) raw DDR4-scrambled cells (256× fewer collisions);
//! (e) DDR4 data read back after a reboot (no collapse: still noise).
//!
//! Usage: `figure3 [output-dir]` (default `figure3_out/`).

use coldboot::dump::MemoryDump;
use coldboot::stats::{self, obfuscation_report};
use coldboot_bench::machines::micro_geometry;
use coldboot_bench::table;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use std::fs;
use std::path::Path;

const WIDTH: usize = 1024;
const HEIGHT: usize = 1024;

/// Draws a synthetic "photo": large flat regions + stripes, one byte per
/// pixel, so repeated 64-byte blocks abound (as in the paper's test image).
fn synthetic_image() -> Vec<u8> {
    let mut img = vec![0u8; WIDTH * HEIGHT];
    for y in 0..HEIGHT {
        for x in 0..WIDTH {
            let dx = x as f64 - 512.0;
            let dy = y as f64 - 512.0;
            let r = (dx * dx + dy * dy).sqrt();
            img[y * WIDTH + x] = if r < 200.0 {
                0xF0 // bright disc
            } else if r < 280.0 {
                0x20 // dark ring
            } else if (x / 64) % 2 == 0 {
                0x90 // vertical stripes
            } else {
                0x50
            };
        }
    }
    img
}

fn write_pgm(path: &Path, data: &[u8]) {
    let mut out = format!("P5\n{WIDTH} {HEIGHT}\n255\n").into_bytes();
    out.extend_from_slice(&data[..WIDTH * HEIGHT]);
    fs::write(path, out).expect("failed to write PGM");
}

fn machine(uarch: Microarchitecture, id: u64) -> Machine {
    let mut m = Machine::new(uarch, micro_geometry(), BiosConfig::default(), id);
    let size = m.capacity() as usize;
    m.insert_module(DramModule::new(size, id)).unwrap();
    m
}

/// Writes the image through the scrambler and returns
/// `(raw scrambled cells, view after reboot through the new descrambler)`.
fn scramble_panels(uarch: Microarchitecture, id: u64, image: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let mut m = machine(uarch, id);
    m.write(0, image).unwrap();
    let raw = m.peek_raw(0, image.len()).unwrap();
    m.reboot();
    let rebooted = m.dump(0, image.len()).unwrap();
    (raw, rebooted)
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "figure3_out".to_string());
    fs::create_dir_all(&out_dir).expect("cannot create output dir");
    let out = Path::new(&out_dir);

    let image = synthetic_image();
    let (ddr3_raw, ddr3_reboot) = scramble_panels(Microarchitecture::SandyBridge, 3, &image);
    let (ddr4_raw, ddr4_reboot) = scramble_panels(Microarchitecture::Skylake, 4, &image);

    let panels = [
        ("a_original", &image),
        ("b_ddr3_scrambled", &ddr3_raw),
        ("c_ddr3_after_reboot", &ddr3_reboot),
        ("d_ddr4_scrambled", &ddr4_raw),
        ("e_ddr4_after_reboot", &ddr4_reboot),
    ];
    let mut rows = Vec::new();
    for (name, data) in &panels {
        write_pgm(&out.join(format!("{name}.pgm")), data);
        let dump = MemoryDump::new(data.to_vec(), 0);
        let r = obfuscation_report(&dump);
        rows.push(vec![
            name.to_string(),
            r.blocks.to_string(),
            r.distinct_blocks.to_string(),
            format!("{:.4}", r.duplicate_fraction),
            format!("{:.3}", r.entropy_bits),
        ]);
    }
    table::print(
        "Figure 3: obfuscation metrics per panel",
        &["panel", "blocks", "distinct blocks", "dup fraction", "entropy bits/byte"],
        &rows,
    );

    // The collapse metric. The after-reboot view is data ^ K_old ^ K_new,
    // so XOR against the known original image isolates K_old ^ K_new.
    let ddr3_after = MemoryDump::new(ddr3_reboot.clone(), 0);
    let ddr4_after = MemoryDump::new(ddr4_reboot.clone(), 0);
    let image_dump = MemoryDump::new(image.clone(), 0);
    let ddr3_classes = stats::cross_dump_xor_classes(&ddr3_after, &image_dump);
    let ddr4_classes = stats::cross_dump_xor_classes(&ddr4_after, &image_dump);
    println!("\nCross-boot keystream classes (K_old xor K_new):");
    println!("  DDR3: {ddr3_classes} (paper: 1 universal key -> image reappears, panel c)");
    println!("  DDR4: {ddr4_classes} (paper: thousands -> still noise, panel e)");
    println!("\nPGM panels written to {out_dir}/ (view with any image tool).");
}
