//! Regenerates the paper's **§III-D retention measurements**: fraction of
//! charge retained by unpowered modules across a temperature × time sweep,
//! for seven simulated modules (five DDR3-era, two DDR4-era) with
//! manufacturing spread — including one DDR3 module that leaks faster than
//! the newer DDR4 parts, as the paper observed.

use coldboot_bench::table;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::{retention, DecayModel};
use coldboot_dram::transplant::Transplant;

struct TestedModule {
    name: &'static str,
    quality: f64,
}

const MODULES: [TestedModule; 7] = [
    TestedModule { name: "DDR3-A", quality: 1.1 },
    TestedModule { name: "DDR3-B", quality: 0.9 },
    TestedModule { name: "DDR3-C", quality: 1.3 },
    TestedModule { name: "DDR3-D (leaky)", quality: 4.0 },
    TestedModule { name: "DDR3-E", quality: 1.0 },
    TestedModule { name: "DDR4-A", quality: 0.8 },
    TestedModule { name: "DDR4-B", quality: 1.0 },
];

const SIZE: usize = 1 << 18; // 256 KiB sample per measurement

fn measure(quality: f64, serial: u64, celsius: f64, seconds: f64) -> f64 {
    let mut module = DramModule::with_quality(SIZE, serial, quality);
    let pattern: Vec<u8> = (0..SIZE).map(|i| (i as u8).wrapping_mul(31)).collect();
    module.write(0, &pattern);
    let module = Transplant::begin(module)
        .freeze_to(celsius)
        .unplug()
        .wait_seconds(seconds)
        .resocket();
    retention(&pattern, module.contents())
}

fn main() {
    let model = DecayModel::paper_calibrated();
    println!(
        "Decay model: lambda(T) = {} * exp({} * T_celsius) per charged bit per second",
        model.lambda0_per_sec, model.temp_coeff
    );

    // Analytic sweep (model-level): retention of charged cells.
    let temps = [20.0, 0.0, -25.0, -50.0];
    let times = [1.0, 3.0, 5.0, 10.0, 30.0, 60.0];
    let mut rows = Vec::new();
    for &t in &temps {
        let mut row = vec![format!("{t:>5.0} C")];
        for &s in &times {
            row.push(format!("{:.1}%", 100.0 * model.retention_fraction(t, s, 1.0)));
        }
        rows.push(row);
    }
    table::print(
        "Charge retention of a nominal module (analytic)",
        &["temp", "1s", "3s", "5s", "10s", "30s", "60s"],
        &rows,
    );

    // Per-module simulated transfer at the paper's demo conditions.
    let mut rows = Vec::new();
    for (i, m) in MODULES.iter().enumerate() {
        let frozen = measure(m.quality, i as u64 + 1, -25.0, 5.0);
        let warm = measure(m.quality, i as u64 + 100, 20.0, 3.0);
        rows.push(vec![
            m.name.to_string(),
            format!("{:.2}", m.quality),
            format!("{:.2}%", 100.0 * frozen),
            format!("{:.2}%", 100.0 * warm),
        ]);
    }
    table::print(
        "Per-module bit retention (simulated transplant; includes bits already at ground)",
        &["module", "leak factor", "-25C / 5s", "+20C / 3s"],
        &rows,
    );

    println!(
        "\nPaper reference points: (i) at operating temperature a significant \
         fraction of data is lost within 3 seconds; (ii) super-cooled to \
         ~-25C, modules retain 90-99% of their charges over a ~5 second \
         transfer; (iii) one DDR3 module leaked faster than the DDR4 parts."
    );
}
