//! Regenerates the paper's **§IV validation**: the same cold boot attack
//! that defeats the Skylake scrambler finds *nothing* when the scrambler is
//! replaced by a strong counter-mode cipher engine — at zero exposed read
//! latency.

use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot::stats::obfuscation_report;
use coldboot_bench::machines::micro_geometry;
use coldboot_bench::table;
use coldboot_bench::workload::{fill_realistic, WorkloadMix};
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_dram::timing::jedec_ddr4_cas_latencies_ns;
use coldboot_memenc::controller::{encrypted_machine, EncryptedBus};
use coldboot_memenc::engine::EngineKind;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KEY_TABLE_ADDR: u64 = 0x7_0040;

fn prepare_victim(mut victim: Machine, volume: &Volume) -> Machine {
    let size = victim.capacity() as usize;
    victim.insert_module(DramModule::new(size, 50)).unwrap();
    // Mostly-idle mix: on this deliberately small (1 MiB) memory each of
    // the 4096 key ids covers only 4 blocks, so a high zero fraction is
    // needed for every id to expose its key; at realistic memory sizes
    // (see attack_e2e) each id covers 64+ blocks and the default mix works.
    fill_realistic(&mut victim, WorkloadMix::mostly_idle(), 99).unwrap();
    MountedVolume::mount(&mut victim, volume, b"pw", KEY_TABLE_ADDR).unwrap();
    victim
}

fn attack(mut victim: Machine, attacker: &mut Machine) -> (usize, usize, f64) {
    let dump = capture_dump_via_transplant(
        &mut victim,
        attacker,
        TransplantParams::paper_demo(),
        DecayModel::lossless(), // isolate the cryptographic question
    )
    .unwrap();
    let config = AttackConfig {
        search: coldboot::keysearch::SearchConfig {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            ..Default::default()
        },
        ..Default::default()
    };
    let report = run_ddr4_attack(&dump, &config);
    let entropy = obfuscation_report(&dump).entropy_bits;
    (report.candidates.len(), report.outcome.recovered.len(), entropy)
}

fn main() {
    let volume = Volume::create(b"pw", b"the same secret on both machines", &mut StdRng::seed_from_u64(5));
    let geometry = micro_geometry();

    // Baseline: stock Skylake scrambler — the attack succeeds.
    let victim = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 1);
    let mut attacker = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 2);
    let (cand_s, rec_s, ent_s) = attack(prepare_victim(victim, &volume), &mut attacker);

    // Defense: ChaCha8 engine in place of the scrambler.
    let victim = encrypted_machine(
        Microarchitecture::Skylake,
        geometry,
        BiosConfig::default(),
        3,
        EngineKind::ChaCha8,
    );
    let mut attacker2 = encrypted_machine(
        Microarchitecture::Skylake,
        geometry,
        BiosConfig::default(),
        4,
        EngineKind::ChaCha8,
    );
    let (cand_e, rec_e, ent_e) = attack(prepare_victim(victim, &volume), &mut attacker2);

    table::print(
        "Section IV: the identical attack vs scrambler and vs strong cipher",
        &[
            "memory interface",
            "mined candidate keys",
            "recovered AES keys",
            "dump entropy bits/byte",
        ],
        &[
            vec![
                "DDR4 scrambler (Skylake)".into(),
                cand_s.to_string(),
                rec_s.to_string(),
                format!("{ent_s:.3}"),
            ],
            vec![
                "ChaCha8 engine".into(),
                cand_e.to_string(),
                rec_e.to_string(),
                format!("{ent_e:.3}"),
            ],
        ],
    );
    assert!(rec_s > 0, "baseline attack unexpectedly failed");
    assert_eq!(rec_e, 0, "attack must fail against strong encryption");

    // And the defense is free: exposed read latency at every JEDEC CAS bin.
    let bus = EncryptedBus::new(EngineKind::ChaCha8, 7);
    let rows: Vec<Vec<String>> = jedec_ddr4_cas_latencies_ns()
        .iter()
        .map(|&cl| {
            vec![
                format!("{cl:.2}"),
                format!("{:.2}", bus.exposed_read_latency_ns(cl)),
            ]
        })
        .collect();
    table::print(
        "ChaCha8 exposed read latency per JEDEC DDR4 CAS bin (ns)",
        &["CAS latency", "exposed latency"],
        &rows,
    );
    println!(
        "\nKey Idea 2 reproduced: the attack that recovers disk keys from \
         scrambled DDR4 finds zero scrambler keys and zero AES schedules \
         under ChaCha8, whose keystream completes before the fastest \
         possible DDR4 column access."
    );
}
