//! Regenerates the paper's **Figure 7** — power and area overhead of
//! replacing the scrambler with AES-128 / ChaCha8 engines on four 45 nm
//! CPUs, at 100 % and 20 % DRAM bandwidth utilization.

use coldboot_bench::table;
use coldboot_memenc::engine::EngineKind;
use coldboot_memenc::power::{overhead, FIGURE7_CPUS};

fn main() {
    let engines = [EngineKind::ChaCha8, EngineKind::Aes128];
    let mut rows = Vec::new();
    for cpu in &FIGURE7_CPUS {
        for kind in engines {
            let full = overhead(cpu, kind, 1.0);
            let low = overhead(cpu, kind, 0.2);
            rows.push(vec![
                cpu.name.to_string(),
                cpu.segment.to_string(),
                format!("{}", cpu.channels),
                kind.name().to_string(),
                format!("{:.2}", full.area_pct),
                format!("{:.2}", full.power_pct),
                format!("{:.2}", low.power_pct),
            ]);
        }
    }
    table::print(
        "Figure 7: Power and area overhead of per-channel cipher engines (45 nm)",
        &[
            "CPU",
            "segment",
            "ch",
            "engine",
            "area %",
            "power % @100% util",
            "power % @20% util",
        ],
        &rows,
    );
    println!(
        "\nPaper headline: area overheads are about or below 1% everywhere; \
         power overheads are below 3% except the Atom N280, which sees up to \
         ~17% at full utilization but under 6% at realistic (20%) utilization."
    );
}
