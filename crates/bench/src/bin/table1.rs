//! Regenerates the paper's **Table I** — the tested machine configurations —
//! and reports the scrambler each simulated machine boots with.

use coldboot_bench::machines::TABLE1;
use coldboot_bench::table;
use coldboot_scrambler::controller::{BiosConfig, Machine};

fn main() {
    let rows: Vec<Vec<String>> = TABLE1
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let machine = Machine::new(m.uarch, m.geometry(), BiosConfig::default(), i as u64);
            vec![
                m.cpu_model.to_string(),
                m.uarch.name().to_string(),
                m.launch.to_string(),
                format!("{}", m.geometry()),
                machine.transform_name().to_string(),
            ]
        })
        .collect();
    table::print(
        "Table I: CPU Models of Tested Machines (simulated)",
        &[
            "CPU Model",
            "Microarchitecture",
            "Launch Date",
            "Simulated Geometry",
            "Boot-time Scrambler",
        ],
        &rows,
    );
    println!(
        "\nPaper reference: Table I lists the five analyzed machines \
         (2x SandyBridge DDR3, 1x IvyBridge DDR3, 2x Skylake DDR4)."
    );
}
