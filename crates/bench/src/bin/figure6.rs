//! Regenerates the paper's **Figure 6** — decryption latency of each cipher
//! engine vs. the number of outstanding back-to-back CAS requests on
//! DDR4-2400, against the 12.5–15.01 ns JEDEC CAS-latency band.

use coldboot_bench::table;
use coldboot_dram::timing::{DDR4_MAX_CAS_NS, DDR4_MIN_CAS_NS};
use coldboot_memenc::engine::EngineKind;
use coldboot_memenc::overlap::{OverlapModel, MAX_OUTSTANDING_CAS};

fn main() {
    let models: Vec<OverlapModel> = EngineKind::ALL
        .iter()
        .map(|&k| OverlapModel::ddr4_2400(k))
        .collect();

    let mut rows = Vec::new();
    for k in 1..=MAX_OUTSTANDING_CAS {
        let mut row = vec![k.to_string()];
        for m in &models {
            row.push(format!("{:.2}", m.burst_latency(k).latency_ns));
        }
        rows.push(row);
    }
    table::print(
        "Figure 6: Decryption latency (ns) vs outstanding CAS requests (DDR4-2400)",
        &[
            "outstanding",
            "AES-128",
            "AES-256",
            "ChaCha8",
            "ChaCha12",
            "ChaCha20",
        ],
        &rows,
    );
    println!(
        "\nDDR4 CAS-latency band: {DDR4_MIN_CAS_NS} .. {DDR4_MAX_CAS_NS} ns \
         (latency below the band is fully hidden)."
    );

    let mut summary = Vec::new();
    for m in &models {
        let worst = m.burst_latency(MAX_OUTSTANDING_CAS);
        summary.push(vec![
            m.spec.kind.name().to_string(),
            format!("{:.2}", m.burst_latency(1).latency_ns),
            format!("{:.2}", worst.latency_ns),
            format!("{:.2}", worst.exposed_ns),
            if m.zero_exposed_under_all_loads() {
                "yes".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }
    table::print(
        "Exposed-latency summary",
        &[
            "Cipher",
            "unloaded ns",
            "worst ns",
            "worst exposed ns",
            "zero-exposed under all loads",
        ],
        &summary,
    );
    println!(
        "\nPaper headline: ChaCha8 always completes before the minimum 12.5 ns \
         read delay; AES-128's worst-case exposed latency is ~1.3 ns at 18 \
         outstanding requests."
    );
}
