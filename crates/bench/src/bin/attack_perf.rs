//! Regenerates the paper's **attack-performance** numbers (§III-C): memory
//! scanned per unit time by the AES key search, single-core and scaled
//! across cores.
//!
//! The paper (2016 hardware + AES-NI): 100 MB per ~2 hours per core;
//! 8 GB in ~21 hours on an 8-core Xeon D1541. We report our software-AES
//! numbers on this machine and the extrapolations in the same units.
//!
//! Usage: `attack_perf [scan-MiB] [candidate-keys]` (defaults 2 MiB, 4096).

use coldboot::dump::MemoryDump;
use coldboot::keysearch::{search_dump, SearchConfig};
use coldboot::litmus::CandidateKey;
use coldboot_bench::table;
use coldboot_bench::workload::{generate_image, WorkloadMix};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scan_mib: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let n_candidates: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4096);

    // A scrambled-looking image (high entropy) and a full candidate pool:
    // the worst case for the scan, since nothing early-outs at the block
    // level.
    let image = generate_image(
        scan_mib << 20,
        WorkloadMix {
            zero: 0.0,
            constant: 0.0,
            text: 0.0,
        },
        1,
    );
    let dump = MemoryDump::new(image, 0);
    let candidates: Vec<CandidateKey> = (0..n_candidates)
        .map(|i| CandidateKey {
            key: core::array::from_fn(|j| ((i * 31 + j * 7) % 251) as u8),
            observations: 1,
        })
        .collect();

    let max_threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut rows = Vec::new();
    let mut single_core_mib_s = 0.0;
    for threads in [1usize, 2, 4, max_threads] {
        if threads > max_threads {
            continue;
        }
        let config = SearchConfig {
            threads,
            ..Default::default()
        };
        let t = Instant::now();
        let outcome = search_dump(&dump, &candidates, &config);
        let secs = t.elapsed().as_secs_f64();
        let mib_s = scan_mib as f64 / secs;
        if threads == 1 {
            single_core_mib_s = mib_s;
        }
        rows.push(vec![
            threads.to_string(),
            format!("{:.2}", secs),
            format!("{:.3}", mib_s),
            outcome.hits.len().to_string(),
        ]);
    }
    table::print(
        &format!(
            "Attack scan throughput ({scan_mib} MiB high-entropy dump, {n_candidates} candidate keys)"
        ),
        &["threads", "seconds", "MiB/s", "false hits"],
        &rows,
    );

    let hours_100mb = 100.0 / (single_core_mib_s * 3600.0);
    let hours_8gb_8core = (8.0 * 1024.0) / (single_core_mib_s * 8.0 * 3600.0);
    println!("\nExtrapolations at the single-core rate:");
    println!("  100 MB on one core: {hours_100mb:.2} hours (paper: ~2 hours with AES-NI)");
    println!("  8 GB on 8 cores:    {hours_8gb_8core:.2} hours (paper: ~21 hours)");
    println!(
        "  (the task is embarrassingly parallel across blocks, as the paper notes)"
    );
}
