//! Regenerates the paper's **attack-performance** numbers (§III-C): memory
//! scanned per unit time by each stage of the attack pipeline, single-core
//! and scaled across cores on the work-stealing scan engine.
//!
//! Two stages are measured separately because their costs differ by orders
//! of magnitude per block:
//!
//! * **mining** — the scrambler-key litmus sweep + consolidation over a
//!   realistic (default-mix) scrambled image, where zero-filled blocks
//!   expose scrambler keys;
//! * **key search** — the AES schedule litmus over a high-entropy image ×
//!   a full 4096-candidate pool, the worst case (nothing early-outs).
//!
//! The paper (2016 hardware + AES-NI): 100 MB per ~2 hours per core; 8 GB
//! in ~21 hours on an 8-core Xeon D1541. We report our software-AES numbers
//! on this machine and the extrapolations in the same units.
//!
//! Usage: `attack_perf [scan-MiB] [candidate-keys] [--json PATH]`
//! (defaults: 2 MiB, 4096 candidates, JSON to `BENCH_scan.json`).
//! The JSON report carries counts and rates only — never key bytes.

use coldboot::attack::{AttackConfig, AttackReport};
use coldboot::dump::MemoryDump;
use coldboot::keysearch::{search_dump, SearchConfig};
use coldboot::litmus::{mine_candidate_keys, CandidateKey, MiningConfig};
use coldboot_bench::report::Json;
use coldboot_bench::table;
use coldboot_bench::workload::{generate_image, WorkloadMix};
use coldboot_crypto::aes::KeySchedule;
use coldboot_dumpio::format::DumpMeta;
use coldboot_dumpio::pipeline::{
    attack_file, attack_file_pipelined, ScanControl, DEFAULT_WINDOW_BLOCKS,
};
use coldboot_dumpio::reader::DumpReader;
use coldboot_dumpio::writer::write_image;
use std::io::BufReader;
use std::time::Instant;

/// Distinct scrambler keys planted in the mining image (one per 64-block
/// stripe, like a key pool addressed by low block-index bits).
const MINING_KEY_POOL: usize = 64;

/// A structured (Skylake-shaped) scrambler key: in each 16-byte group the
/// second 8 bytes are the first 8 XOR a repeating 2-byte mask.
fn structured_key(tag: u8) -> [u8; 64] {
    let mut key = [0u8; 64];
    for g in 0..4 {
        for i in 0..8 {
            let base = tag
                .wrapping_mul(31)
                .wrapping_add((g * 8 + i) as u8)
                .wrapping_mul(113);
            key[g * 16 + i] = base;
            key[g * 16 + 8 + i] = base ^ [0x3C ^ tag, 0xC3][i % 2];
        }
    }
    key
}

struct StageRow {
    threads: usize,
    seconds: f64,
    mib_per_s: f64,
    count: usize,
}

/// Blocks per scrambler-key stripe in the end-to-end image: wide enough
/// that a planted 240-byte AES schedule (plus its verification window)
/// descrambles with a single pool key.
const E2E_STRIPE_BLOCKS: usize = 16;

/// The end-to-end stage: a CBDF capture file on disk, attacked serially
/// (decode, then scan) and pipelined (decode/scan overlap), asserting the
/// two reports are identical before trusting either time.
fn e2e_attack_stage(e2e_mib: usize) -> (f64, f64, AttackReport) {
    let mut image = generate_image(e2e_mib << 20, WorkloadMix::default(), 7);
    let master: Vec<u8> = (0..32).map(|i| (i * 11 + 5) as u8).collect();
    let schedule = KeySchedule::expand(&master).expect("AES-256").to_bytes();
    // Plant mid-stripe in the back half with whole-stripe margins.
    let plant = (image.len() / 2) + E2E_STRIPE_BLOCKS * 64 + 256;
    image[plant..plant + schedule.len()].copy_from_slice(&schedule);
    for (i, block) in image.chunks_mut(64).enumerate() {
        let key = structured_key(((i / E2E_STRIPE_BLOCKS) % MINING_KEY_POOL) as u8);
        for (b, k) in block.iter_mut().zip(key.iter()) {
            *b ^= k;
        }
    }
    let path = std::env::temp_dir().join(format!(
        "coldboot-attack-perf-{}.cbdf",
        std::process::id()
    ));
    let cbdf = write_image(
        Vec::new(),
        DumpMeta::for_image(0, image.len() as u64),
        &image,
    )
    .expect("encode capture file");
    std::fs::write(&path, cbdf).expect("write capture file");

    let config = AttackConfig {
        mining_prefix_bytes: (2 << 20).min(image.len()),
        ..AttackConfig::default()
    };
    let run = |pipelined: bool| -> AttackReport {
        let file = std::fs::File::open(&path).expect("open capture file");
        let mut reader = DumpReader::new(BufReader::new(file)).expect("header");
        let ctrl = ScanControl::new();
        if pipelined {
            attack_file_pipelined(&mut reader, &config, DEFAULT_WINDOW_BLOCKS, &ctrl)
        } else {
            attack_file(&mut reader, &config, DEFAULT_WINDOW_BLOCKS, &ctrl)
        }
        .expect("attack pass")
    };
    // Warm/identity pass: the overlap must never change the result.
    let warm_serial = run(false);
    let warm_pipelined = run(true);
    assert_eq!(warm_serial.candidates, warm_pipelined.candidates);
    assert_eq!(warm_serial.outcome.hits, warm_pipelined.outcome.hits);
    assert_eq!(warm_serial.outcome.recovered, warm_pipelined.outcome.recovered);
    assert!(
        warm_serial
            .outcome
            .recovered
            .iter()
            .any(|r| r.master_key == master),
        "end-to-end attack must recover the planted AES-256 key"
    );
    let t = Instant::now();
    let report = run(false);
    let serial_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = run(true);
    let pipelined_s = t.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    (serial_s, pipelined_s, report)
}

fn thread_counts(max_threads: usize) -> Vec<usize> {
    let mut counts: Vec<usize> = [1usize, 2, 4, max_threads]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    counts.dedup();
    counts
}

fn print_stage(title: &str, count_header: &str, rows: &[StageRow]) {
    let single = rows.first().map_or(1.0, |r| r.mib_per_s);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.2}", r.seconds),
                format!("{:.3}", r.mib_per_s),
                format!("{:.2}x", r.mib_per_s / single),
                r.count.to_string(),
            ]
        })
        .collect();
    table::print(
        title,
        &["threads", "seconds", "MiB/s", "speedup", count_header],
        &table_rows,
    );
}

fn stage_json(rows: &[StageRow], count_field: &'static str) -> Json {
    let single = rows.first().map_or(1.0, |r| r.mib_per_s);
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("threads", Json::Int(r.threads as i64)),
                    ("seconds", Json::Num(r.seconds)),
                    ("mib_per_s", Json::Num(r.mib_per_s)),
                    ("speedup_vs_single_thread", Json::Num(r.mib_per_s / single)),
                    (count_field, Json::Int(r.count as i64)),
                ])
            })
            .collect(),
    )
}

fn main() {
    let mut scan_mib: usize = 2;
    let mut n_candidates: usize = 4096;
    let mut json_path = String::from("BENCH_scan.json");
    let mut positional = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            json_path = args.next().unwrap_or(json_path);
        } else if let Ok(v) = arg.parse::<usize>() {
            match positional {
                0 => scan_mib = v,
                _ => n_candidates = v,
            }
            positional += 1;
        } else {
            eprintln!("usage: attack_perf [scan-MiB] [candidate-keys] [--json PATH]");
            std::process::exit(2);
        }
    }
    let mining_mib = (scan_mib * 8).max(1);
    let max_threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let counts = thread_counts(max_threads);

    // Stage 1: scrambler-key mining over a realistic scrambled image.
    // Default-mix content (40% zeros) XORed block-wise with a pool of
    // structured keys: the zero blocks expose the pool, exactly the dump
    // prefix the real attack mines.
    let mut mining_image = generate_image(mining_mib << 20, WorkloadMix::default(), 3);
    for (i, block) in mining_image.chunks_mut(64).enumerate() {
        let key = structured_key((i % MINING_KEY_POOL) as u8);
        for (b, k) in block.iter_mut().zip(key.iter()) {
            *b ^= k;
        }
    }
    let mining_dump = MemoryDump::new(mining_image, 0);
    let mut mining_rows = Vec::new();
    for &threads in &counts {
        let config = MiningConfig {
            threads,
            ..MiningConfig::default()
        };
        let t = Instant::now();
        let found = mine_candidate_keys(&mining_dump, &config);
        let seconds = t.elapsed().as_secs_f64();
        mining_rows.push(StageRow {
            threads,
            seconds,
            mib_per_s: mining_mib as f64 / seconds,
            count: found.len(),
        });
    }
    print_stage(
        &format!("Scrambler-key mining throughput ({mining_mib} MiB default-mix scrambled image)"),
        "keys",
        &mining_rows,
    );

    // Stage 2: AES key search over a high-entropy image with a full
    // candidate pool — the worst case for the scan, since nothing
    // early-outs at the block level.
    let image = generate_image(
        scan_mib << 20,
        WorkloadMix {
            zero: 0.0,
            constant: 0.0,
            text: 0.0,
        },
        1,
    );
    let dump = MemoryDump::new(image, 0);
    let candidates: Vec<CandidateKey> = (0..n_candidates)
        .map(|i| CandidateKey {
            key: core::array::from_fn(|j| ((i * 31 + j * 7) % 251) as u8),
            observations: 1,
        })
        .collect();
    let mut search_rows = Vec::new();
    for &threads in &counts {
        let config = SearchConfig {
            threads,
            ..Default::default()
        };
        let t = Instant::now();
        let outcome = search_dump(&dump, &candidates, &config);
        let seconds = t.elapsed().as_secs_f64();
        search_rows.push(StageRow {
            threads,
            seconds,
            mib_per_s: scan_mib as f64 / seconds,
            count: outcome.hits.len(),
        });
    }
    print_stage(
        &format!(
            "Attack scan throughput ({scan_mib} MiB high-entropy dump, {n_candidates} candidate keys)"
        ),
        "false hits",
        &search_rows,
    );

    // Stage 3: the full capture-file → recovered-key pipeline on disk,
    // serial decode-then-scan vs the pipelined decode/scan overlap.
    let e2e_mib = (scan_mib * 4).max(1);
    let (serial_s, pipelined_s, e2e_report) = e2e_attack_stage(e2e_mib);
    let serial_mib_s = e2e_mib as f64 / serial_s;
    let pipelined_mib_s = e2e_mib as f64 / pipelined_s;
    table::print(
        &format!("End-to-end capture-file attack ({e2e_mib} MiB CBDF, serial vs pipelined)"),
        &["mode", "seconds", "MiB/s", "GB/s", "recovered"],
        &[
            vec![
                "serial".into(),
                format!("{serial_s:.2}"),
                format!("{serial_mib_s:.3}"),
                format!("{:.4}", serial_mib_s / 1024.0),
                e2e_report.outcome.recovered.len().to_string(),
            ],
            vec![
                "pipelined".into(),
                format!("{pipelined_s:.2}"),
                format!("{pipelined_mib_s:.3}"),
                format!("{:.4}", pipelined_mib_s / 1024.0),
                e2e_report.outcome.recovered.len().to_string(),
            ],
        ],
    );
    println!(
        "  decode/scan overlap speedup: {:.2}x (byte-identical reports)",
        serial_s / pipelined_s.max(1e-9)
    );

    let single_core_mib_s = search_rows.first().map_or(1.0, |r| r.mib_per_s);
    let hours_100mb = 100.0 / (single_core_mib_s * 3600.0);
    let hours_8gb_8core = (8.0 * 1024.0) / (single_core_mib_s * 8.0 * 3600.0);
    println!("\nExtrapolations at the single-core key-search rate:");
    println!("  100 MB on one core: {hours_100mb:.2} hours (paper: ~2 hours with AES-NI)");
    println!("  8 GB on 8 cores:    {hours_8gb_8core:.2} hours (paper: ~21 hours)");
    println!("  (the task is embarrassingly parallel across blocks, as the paper notes)");

    let doc = Json::obj([
        ("report", Json::Str("attack_perf scan throughput".into())),
        (
            "config",
            Json::obj([
                ("mining_mib", Json::Int(mining_mib as i64)),
                ("search_mib", Json::Int(scan_mib as i64)),
                ("candidate_keys", Json::Int(n_candidates as i64)),
                ("max_threads", Json::Int(max_threads as i64)),
            ]),
        ),
        ("mining", stage_json(&mining_rows, "keys_mined")),
        ("keysearch", stage_json(&search_rows, "false_hits")),
        // The end-to-end rates sit at the top level so bench-diff gates
        // them (nested stage arrays are informational only).
        ("attack_e2e_mib", Json::Int(e2e_mib as i64)),
        ("attack_e2e_serial_mib_per_s", Json::Num(serial_mib_s)),
        ("attack_e2e_pipelined_mib_per_s", Json::Num(pipelined_mib_s)),
        (
            "attack_e2e_pipeline_speedup",
            Json::Num(serial_s / pipelined_s.max(1e-9)),
        ),
        (
            "attack_e2e_recovered_keys",
            Json::Int(e2e_report.outcome.recovered.len() as i64),
        ),
        (
            "extrapolations",
            Json::obj([
                ("hours_100mb_one_core", Json::Num(hours_100mb)),
                ("hours_8gb_8_cores", Json::Num(hours_8gb_8core)),
            ]),
        ),
    ]);
    // The default emission lands in the shared trajectory; a custom --json
    // path is experiment scratch and stays out of the history.
    let written = if json_path == "BENCH_scan.json" {
        coldboot_bench::history::record("scan", &doc)
    } else {
        std::fs::write(&json_path, doc.render())
    };
    match written {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }
}
