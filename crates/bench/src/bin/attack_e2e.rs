//! Regenerates the paper's **§III-C demonstration**: recovering
//! VeraCrypt/TrueCrypt AES-XTS master keys from a frozen, transplanted,
//! scrambled DDR4 DIMM — end to end.
//!
//! Stages (exactly the paper's):
//!  1. victim Skylake machine, realistic memory load, volume mounted
//!     (expanded XTS schedules cached in DRAM);
//!  2. DIMM sprayed to −25 °C, pulled, carried for 5 s (bits decay),
//!     seated in the attacker's same-generation machine — whose own
//!     scrambler stays ON;
//!  3. dump; mine scrambler keys from a ≤16 MB prefix via the litmus test;
//!  4. single-block AES key search over all (block × candidate) pairs;
//!  5. master-key recovery and full volume decryption.
//!
//! Usage: `attack_e2e [--micro]` (`--micro` = 1 MiB memory for a quick
//! run; default is the 16 MiB medium machine).

use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot::keysearch::SearchConfig;
use coldboot_bench::machines::{medium_geometry, micro_geometry};
use coldboot_bench::workload::{fill_realistic, WorkloadMix};
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::{bit_errors, DecayModel};
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::volume::MasterKeys;
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const PASSWORD: &[u8] = b"correct horse battery staple";
const SECRET: &[u8] = b"ATTACK AT DAWN. Wire transfer codes: 8832-1194-7718. Burn after reading.";
const KEY_TABLE_ADDR: u64 = 0xB_0050; // arbitrary, not 16-byte aligned

fn main() {
    let micro = std::env::args().any(|a| a == "--micro");
    let (geometry, mix) = if micro {
        (micro_geometry(), WorkloadMix::mostly_idle())
    } else {
        (medium_geometry(), WorkloadMix::default())
    };
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    println!("== Stage 0: the victim ==");
    let volume = Volume::create(PASSWORD, SECRET, &mut StdRng::seed_from_u64(2024));
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 1);
    let size = victim.capacity() as usize;
    // A module at the retentive end of the paper's observed 90-99% charge
    // retention range (the demonstrated attack implies such a module: a 3%
    // charge loss leaves almost no clean 32-byte expansion window, while a
    // ~1% loss leaves several per schedule).
    victim
        .insert_module(DramModule::with_quality(size, 42, 0.35))
        .unwrap();
    fill_realistic(&mut victim, mix, 7).unwrap();
    let mounted = MountedVolume::mount(&mut victim, &volume, PASSWORD, KEY_TABLE_ADDR).unwrap();
    println!(
        "   {} MiB DDR4, scrambler: {}, volume mounted, key table at {:#x}",
        size >> 20,
        victim.transform_name(),
        KEY_TABLE_ADDR
    );

    println!("== Stage 1: freeze to -25C, pull, carry 5s, re-socket ==");
    let mut attacker =
        Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 2);
    let t = Instant::now();
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::paper_calibrated(),
    )
    .unwrap();
    println!(
        "   dumped {} MiB through the attacker's ENABLED scrambler ({:.2?})",
        dump.len() >> 20,
        t.elapsed()
    );
    {
        // Measure what the transfer actually cost (attacker could not know
        // this; reported for the experiment record).
        let mut pristine =
            Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 1);
        pristine
            .insert_module(DramModule::with_quality(size, 42, 0.35))
            .unwrap();
        fill_realistic(&mut pristine, mix, 7).unwrap();
        MountedVolume::mount(&mut pristine, &volume, PASSWORD, KEY_TABLE_ADDR).unwrap();
        let before = pristine.module().unwrap().contents().to_vec();
        let after = attacker.module().unwrap().contents();
        let errs = bit_errors(&before, after);
        println!(
            "   transfer decay: {} bit flips ({:.3}% of all bits)",
            errs,
            100.0 * errs as f64 / (before.len() as f64 * 8.0)
        );
    }

    println!("== Stage 2+3: mine scrambler keys, search for AES schedules ==");
    let config = AttackConfig {
        search: SearchConfig {
            threads,
            ..Default::default()
        },
        ..Default::default()
    };
    let t = Instant::now();
    let report = run_ddr4_attack(&dump, &config);
    let elapsed = t.elapsed();
    println!(
        "   mined {} candidate keys from {} MiB prefix",
        report.candidates.len(),
        report.mined_bytes >> 20
    );
    println!(
        "   scanned {} blocks with {} threads in {:.2?} ({:.2} MiB/s): {} litmus hits, {} verified keys",
        report.outcome.blocks_scanned,
        threads,
        elapsed,
        (report.outcome.blocks_scanned as f64 * 64.0 / (1 << 20) as f64) / elapsed.as_secs_f64(),
        report.outcome.hits.len(),
        report.outcome.recovered.len(),
    );
    for rec in &report.outcome.recovered {
        println!(
            "   recovered {:?} schedule at {:#x} ({} decayed bits absorbed)",
            rec.key_size, rec.schedule_addr, rec.total_error_bits
        );
    }

    println!("== Stage 4: reassemble the XTS master keys, decrypt the volume ==");
    let mut keys: Vec<&coldboot::keysearch::RecoveredAesKey> =
        report.outcome.recovered.iter().collect();
    keys.sort_by_key(|r| r.schedule_addr);
    let pair = keys
        .windows(2)
        .find(|w| w[1].schedule_addr == w[0].schedule_addr + 240)
        .expect("no adjacent schedule pair found — attack failed");
    let master = MasterKeys {
        data_key: pair[0].master_key.clone().try_into().expect("32-byte key"),
        tweak_key: pair[1].master_key.clone().try_into().expect("32-byte key"),
    };
    let plaintext = volume.decrypt_all(&master).expect("decryption failed");
    assert_eq!(&plaintext[..SECRET.len()], SECRET, "recovered keys are wrong");
    println!("   decrypted volume WITHOUT the password:");
    println!("   >>> {}", String::from_utf8_lossy(&plaintext[..SECRET.len()]));
    println!("\nCold boot attack on scrambled DDR4: SUCCESS");
}
