//! Regenerates the paper's **§III-B analysis**: the observable properties
//! of the DDR3 and DDR4 scramblers, measured with the §III-A "reverse cold
//! boot" framework (zero-filled module → read through the scrambler).
//!
//! Expected shape (paper):
//! * DDR3: 16 keys/channel; cross-boot XOR collapses to **one** universal
//!   key per channel.
//! * DDR4 (Skylake): 4096 keys/channel; every key passes the byte-pair
//!   litmus test; cross-boot XOR does **not** collapse; blocks sharing a
//!   key keep sharing one across boots; a buggy BIOS reuses the seed.

use coldboot::attack::zero_fill_key_extraction;
use coldboot::litmus::scrambler_key_litmus;
use coldboot_bench::machines::micro_geometry;
use coldboot_bench::table;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_scrambler::controller::{BiosConfig, Machine, MachineError};
use std::collections::{HashMap, HashSet};

struct Census {
    distinct_key_count: usize,
    litmus_pass_pct: f64,
    cross_boot_classes: usize,
    sharing_stable: bool,
    buggy_bios_reuses_seed: bool,
}

fn analyze(uarch: Microarchitecture, id: u64) -> Result<Census, MachineError> {
    let geometry = micro_geometry();
    let mut machine = Machine::new(uarch, geometry, BiosConfig::default(), id);
    let keys = zero_fill_key_extraction(&mut machine, id * 31 + 1)?;

    let distinct: HashSet<_> = keys.iter().map(|(_, k)| *k).collect();
    let litmus_pass = keys
        .iter()
        .filter(|(_, k)| scrambler_key_litmus(k, 0))
        .count();

    // Group addresses by key value (the key-sharing pattern), reboot, and
    // re-extract.
    let mut sharing_before: HashMap<[u8; 64], Vec<u64>> = HashMap::new();
    for (addr, k) in &keys {
        sharing_before.entry(*k).or_default().push(*addr);
    }
    machine.remove_module()?;
    machine.reboot();
    let keys_after = zero_fill_key_extraction(&mut machine, id * 31 + 2)?;
    let mut sharing_after: HashMap<[u8; 64], Vec<u64>> = HashMap::new();
    for (addr, k) in &keys_after {
        sharing_after.entry(*k).or_default().push(*addr);
    }
    let groups_before: HashSet<Vec<u64>> = sharing_before.into_values().collect();
    let groups_after: HashSet<Vec<u64>> = sharing_after.into_values().collect();
    let sharing_stable = groups_before == groups_after;

    // Cross-boot XOR classes.
    let after_map: HashMap<u64, [u8; 64]> = keys_after.iter().copied().collect();
    let mut xor_classes: HashSet<[u8; 64]> = HashSet::new();
    for (addr, k1) in &keys {
        let k2 = after_map[addr];
        let mut x = [0u8; 64];
        for i in 0..64 {
            x[i] = k1[i] ^ k2[i];
        }
        xor_classes.insert(x);
    }

    // Buggy BIOS seed reuse.
    let mut buggy = Machine::new(uarch, geometry, BiosConfig::buggy_seed_reuse(), id + 1000);
    let before = buggy.transform().keystream(0);
    buggy.reboot();
    let buggy_bios_reuses_seed = before == buggy.transform().keystream(0);

    Ok(Census {
        distinct_key_count: distinct.len(),
        litmus_pass_pct: 100.0 * litmus_pass as f64 / keys.len() as f64,
        cross_boot_classes: xor_classes.len(),
        sharing_stable,
        buggy_bios_reuses_seed,
    })
}

fn main() {
    let configs = [
        ("DDR3 (SandyBridge)", Microarchitecture::SandyBridge, 16usize, 1usize),
        ("DDR4 (Skylake)", Microarchitecture::Skylake, 4096, 4096),
    ];
    let mut rows = Vec::new();
    for (i, (name, uarch, paper_key_count, paper_classes)) in configs.iter().enumerate() {
        let c = analyze(*uarch, i as u64 + 1).expect("analysis failed");
        rows.push(vec![
            name.to_string(),
            format!("{} (paper: {})", c.distinct_key_count, paper_key_count),
            format!("{:.1}%", c.litmus_pass_pct),
            format!("{} (paper: {})", c.cross_boot_classes, paper_classes),
            c.sharing_stable.to_string(),
            c.buggy_bios_reuses_seed.to_string(),
        ]);
    }
    table::print(
        "Section III-B: scrambler census via the reverse cold boot framework (1 channel)",
        &[
            "scrambler",
            "distinct keys/channel",
            "DDR4-litmus pass",
            "cross-boot XOR classes",
            "key sharing stable across boots",
            "buggy BIOS reuses seed",
        ],
        &rows,
    );
    println!(
        "\nKey Idea 1 reproduced: 4096 distinct keys per DDR4 channel \
         (vs 16 on DDR3), all satisfying the litmus invariants; the DDR3 \
         universal-key collapse (1 XOR class) is gone on DDR4."
    );
}
