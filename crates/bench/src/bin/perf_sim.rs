//! Workload-level validation of "zero performance overhead": drive address
//! streams through the open-page DRAM timing model with each cipher engine
//! racing the column access, and compare average read latency against the
//! scrambler baseline.

use coldboot_bench::table;
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::{AddressMapping, Microarchitecture};
use coldboot_dram::timing::TimingParams;
use coldboot_memenc::engine::{CipherEngineSpec, EngineKind};
use coldboot_memenc::simulation::{AccessPattern, ReadSimulator};

const ACCESSES: usize = 100_000;

fn run(engine: Option<EngineKind>, pattern: AccessPattern) -> coldboot_memenc::simulation::SimResult {
    let geometry = DramGeometry::ddr4_dual_channel_8gib();
    let mapping = AddressMapping::new(Microarchitecture::Skylake, geometry);
    let mut sim = ReadSimulator::new(
        mapping,
        TimingParams::ddr4_fastest(),
        engine.map(CipherEngineSpec::for_kind),
    );
    sim.run(&geometry, pattern, ACCESSES, 42)
}

fn main() {
    let patterns = [
        ("sequential", AccessPattern::Sequential),
        ("random", AccessPattern::Random),
        ("strided(17)", AccessPattern::Strided { stride_blocks: 17 }),
    ];
    let mut rows = Vec::new();
    for (pname, pattern) in patterns {
        let base = run(None, pattern);
        rows.push(vec![
            pname.to_string(),
            "scrambler (baseline)".to_string(),
            format!("{:.1}%", 100.0 * base.row_hit_rate),
            format!("{:.2}", base.avg_read_latency_ns),
            "-".to_string(),
        ]);
        for kind in EngineKind::ALL {
            let enc = run(Some(kind), pattern);
            rows.push(vec![
                pname.to_string(),
                kind.name().to_string(),
                format!("{:.1}%", 100.0 * enc.row_hit_rate),
                format!("{:.2}", enc.avg_read_latency_ns),
                format!("{:+.2}%", enc.overhead_pct(&base)),
            ]);
        }
    }
    table::print(
        &format!("Average read latency over {ACCESSES} accesses (fastest JEDEC DDR4, CL 12.5 ns)"),
        &["pattern", "interface", "row hits", "avg latency ns", "overhead"],
        &rows,
    );
    println!(
        "\nKey Idea 2 at workload level: AES-128/256 and ChaCha8 add exactly \
         0.00% on every pattern; ChaCha12/20 pay their pipeline difference on \
         each read."
    );
}
