//! Regenerates the paper's **Table II** — cipher engine performance at
//! 45 nm — from the pipeline model in `coldboot-memenc`.

use coldboot_bench::table;
use coldboot_memenc::engine::CipherEngineSpec;

/// The paper's published values, for side-by-side comparison.
const PAPER: [(&str, f64, u32, f64); 5] = [
    ("AES-128", 2.4, 13, 5.4),
    ("AES-256", 2.4, 17, 7.08),
    ("ChaCha8", 1.96, 18, 9.18),
    ("ChaCha12", 1.96, 26, 13.27),
    ("ChaCha20", 1.96, 42, 21.42),
];

fn main() {
    let rows: Vec<Vec<String>> = CipherEngineSpec::table2()
        .iter()
        .zip(PAPER.iter())
        .map(|(spec, (name, p_freq, p_cycles, p_delay))| {
            assert_eq!(spec.kind.name(), *name);
            vec![
                spec.kind.name().to_string(),
                format!("{:.2} ({:.2})", spec.max_freq_ghz, p_freq),
                format!("{} ({})", spec.pipeline_cycles, p_cycles),
                format!("{:.2} ({:.2})", spec.pipeline_delay_ns(), p_delay),
                format!("{:.1}", spec.throughput_gbps()),
            ]
        })
        .collect();
    table::print(
        "Table II: Cipher Engine Performance, model (paper) — 45 nm",
        &[
            "Cipher",
            "Max Freq GHz",
            "Cycles per 64B",
            "Max Pipeline Delay ns",
            "Peak GB/s",
        ],
        &rows,
    );
    println!(
        "\nCycle counts are derived from pipeline structure (AES: rounds+3 \
         stages @2.4GHz; ChaCha: 2 stages/round + 2 @1.96GHz) and match the \
         paper's synthesis results."
    );
}
