//! Minimal machine-readable report emission (hand-rolled JSON).
//!
//! The bench binaries emit `BENCH_*.json` files so CI and the experiment
//! scripts can track throughput without scraping text tables. The workspace
//! deliberately carries no JSON dependency; the serializer now lives in
//! [`coldboot_dumpio::json`] (where the `coldboot-dumpd` wire protocol
//! needs a parser too) and is re-exported here so existing bench code and
//! imports keep working: objects preserve insertion order (deterministic
//! output for diffing) and non-finite floats render as `null` (JSON has no
//! NaN/Infinity).
//!
//! Reports must contain **counts and rates only** — never key material or
//! other image-derived bytes. The secret-hygiene lint treats any
//! `key`-named value reaching a serializer as a finding.

pub use coldboot_dumpio::json::{parse, Json};
