//! Minimal machine-readable report emission (hand-rolled JSON).
//!
//! The bench binaries emit `BENCH_*.json` files so CI and the experiment
//! scripts can track throughput without scraping text tables. The workspace
//! deliberately carries no JSON dependency, and the format we need is tiny,
//! so this is a ~100-line serializer: objects preserve insertion order
//! (deterministic output for diffing) and non-finite floats render as
//! `null` (JSON has no NaN/Infinity).
//!
//! Reports must contain **counts and rates only** — never key material or
//! other image-derived bytes. The secret-hygiene lint treats any
//! `key`-named value reaching a serializer as a finding.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Self {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                // lint:allow(panic): write! to a String cannot fail
                write!(out, "{i}").expect("write to String");
            }
            Json::Num(v) if v.is_finite() => {
                // lint:allow(panic): write! to a String cannot fail
                write!(out, "{v}").expect("write to String");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // lint:allow(panic): write! to a String cannot fail
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let doc = Json::obj([
            ("name", Json::Str("scan".into())),
            ("threads", Json::Int(4)),
            ("mib_per_s", Json::Num(12.5)),
            (
                "rows",
                Json::Arr(vec![Json::Int(1), Json::Int(2)]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.render();
        assert!(text.contains("\"name\": \"scan\""));
        assert!(text.contains("\"threads\": 4"));
        assert!(text.contains("\"mib_per_s\": 12.5"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into()).render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
        assert_eq!(Json::Num(0.0).render(), "0\n");
    }

    #[test]
    fn object_order_is_insertion_order() {
        let doc = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        let text = doc.render();
        assert!(text.find("\"z\"").unwrap() < text.find("\"a\"").unwrap());
    }
}
