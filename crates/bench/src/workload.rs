//! Synthetic memory workloads.
//!
//! The attack's key-mining step depends on real memory content statistics:
//! "zeros occur more frequently than most other individual values in
//! memory" (the basis of memory-compression research the paper cites).
//! [`fill_realistic`] reproduces that shape: a configurable fraction of
//! zeroed blocks (freed pages, zero pages, bss), some constant-pattern
//! blocks, some ASCII-ish text, and high-entropy code/data.

use coldboot_scrambler::controller::{Machine, MachineError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Block-class mix for the synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadMix {
    /// Fraction of 64-byte blocks that are all zeros.
    pub zero: f64,
    /// Fraction that are a constant non-zero byte (e.g. 0xFF pools).
    pub constant: f64,
    /// Fraction that look like ASCII text.
    pub text: f64,
    // The remainder is high-entropy (code, compressed data, heap).
}

impl Default for WorkloadMix {
    /// A "heavily loaded system" mix: 40 % zero, 5 % constant, 15 % text,
    /// 40 % high-entropy.
    fn default() -> Self {
        Self {
            zero: 0.40,
            constant: 0.05,
            text: 0.15,
        }
    }
}

impl WorkloadMix {
    /// A nearly idle machine: mostly zeroed memory.
    pub fn mostly_idle() -> Self {
        Self {
            zero: 0.85,
            constant: 0.03,
            text: 0.05,
        }
    }
}

/// Generates a synthetic memory image of `len` bytes (whole blocks).
///
/// # Panics
///
/// Panics if `len` is not a multiple of 64 or the mix fractions exceed 1.
pub fn generate_image(len: usize, mix: WorkloadMix, seed: u64) -> Vec<u8> {
    assert_eq!(len % 64, 0, "image length must be whole blocks");
    assert!(
        mix.zero + mix.constant + mix.text <= 1.0 + 1e-9,
        "mix fractions exceed 1"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut image = vec![0u8; len];
    for block in image.chunks_mut(64) {
        let class: f64 = rng.gen();
        if class < mix.zero {
            // Already zero.
        } else if class < mix.zero + mix.constant {
            let b: u8 = if rng.gen_bool(0.5) { 0xFF } else { rng.gen() };
            block.fill(b);
        } else if class < mix.zero + mix.constant + mix.text {
            for byte in block.iter_mut() {
                *byte = if rng.gen_bool(0.15) {
                    b' '
                } else {
                    rng.gen_range(b'a'..=b'z')
                };
            }
        } else {
            rng.fill(block);
        }
    }
    image
}

/// Fills a machine's entire memory with a realistic workload image,
/// written through its (scrambling/encrypting) memory interface.
///
/// # Errors
///
/// Fails if the machine has no module.
pub fn fill_realistic(machine: &mut Machine, mix: WorkloadMix, seed: u64) -> Result<(), MachineError> {
    let capacity = machine.capacity() as usize;
    let image = generate_image(capacity, mix, seed);
    // Write in 64 KiB strides to bound temporary allocations inside the
    // controller.
    for (i, chunk) in image.chunks(64 << 10).enumerate() {
        machine.write((i * (64 << 10)) as u64, chunk)?;
    }
    Ok(())
}

/// Fraction of zero blocks actually present in an image (sanity metric).
pub fn zero_block_fraction(image: &[u8]) -> f64 {
    let blocks = image.len() / 64;
    if blocks == 0 {
        return 0.0;
    }
    let zeros = image
        .chunks_exact(64)
        .filter(|b| b.iter().all(|&x| x == 0))
        .count();
    zeros as f64 / blocks as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_hits_zero_fraction() {
        let image = generate_image(1 << 20, WorkloadMix::default(), 1);
        let f = zero_block_fraction(&image);
        assert!((0.37..0.43).contains(&f), "zero fraction {f}");
    }

    #[test]
    fn idle_mix_is_mostly_zero() {
        let image = generate_image(1 << 20, WorkloadMix::mostly_idle(), 2);
        assert!(zero_block_fraction(&image) > 0.8);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_image(4096, WorkloadMix::default(), 7);
        let b = generate_image(4096, WorkloadMix::default(), 7);
        let c = generate_image(4096, WorkloadMix::default(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "whole blocks")]
    fn rejects_partial_blocks() {
        generate_image(100, WorkloadMix::default(), 1);
    }
}
