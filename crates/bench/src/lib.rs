//! Shared infrastructure for the benchmark harness and the table/figure
//! regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact from the paper's
//! evaluation (see DESIGN.md §4 for the experiment index):
//!
//! | binary               | paper artifact                               |
//! |----------------------|----------------------------------------------|
//! | `table1`             | Table I — tested machine configurations      |
//! | `table2`             | Table II — cipher engine performance         |
//! | `figure3`            | Figure 3 — scrambler obfuscation comparison  |
//! | `figure6`            | Figure 6 — decryption latency vs load        |
//! | `figure7`            | Figure 7 — power and area overhead           |
//! | `scrambler_analysis` | §III-B — key census, invariants, reboots     |
//! | `attack_e2e`         | §III-C — VeraCrypt key recovery demo         |
//! | `attack_perf`        | §III-C — attack scan throughput              |
//! | `retention`          | §III-D — DRAM retention sweep                |
//! | `defense`            | §IV    — attack vs encrypted memory          |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod machines;
pub mod report;
pub mod table;
pub mod workload;
