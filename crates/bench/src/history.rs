//! Bench trajectory recording and regression diffing.
//!
//! Every `BENCH_*.json` emission also appends one line to
//! `BENCH_history.jsonl` — the git revision, a UTC timestamp, and the full
//! payload — so the repository accumulates a perf trajectory that survives
//! the snapshot files being overwritten. [`diff_latest`] compares the two
//! most recent records per bench and flags >10% regressions: time-suffixed
//! fields (`*_ms`, `*_us`, `*_ns`) regress upward, rate-like fields
//! (`*speedup`, `*throughput*`, `*_per_s`, `*_mib_s`, `*recovery_rate*`)
//! regress downward;
//! everything else (file counts, sample counts) is configuration, not
//! performance, and is ignored.

use std::io::Write;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::report::{parse, Json};

/// The shared trajectory file, appended to from the workspace root (the
/// benches emit their snapshots there too).
pub const HISTORY_FILE: &str = "BENCH_history.jsonl";

/// Writes the snapshot `BENCH_<name>.json` and appends the same payload —
/// wrapped with the git revision and a UTC timestamp — to
/// [`HISTORY_FILE`]. Both paths are relative to the current directory,
/// matching how the bench binaries have always emitted their reports.
pub fn record(name: &str, payload: &Json) -> std::io::Result<()> {
    std::fs::write(format!("BENCH_{name}.json"), payload.render())?;
    let entry = Json::obj([
        ("bench", Json::Str(name.to_string())),
        ("git_rev", Json::Str(git_rev())),
        ("utc", Json::Str(utc_now())),
        ("payload", payload.clone()),
    ]);
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(HISTORY_FILE)?;
    writeln!(file, "{}", entry.render_compact())
}

/// One field that got >10% worse between the previous and latest record
/// of a bench.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Bench name (the `bench` field of the history record).
    pub bench: String,
    /// Payload field that regressed.
    pub field: String,
    /// The field's value in the previous record.
    pub previous: f64,
    /// The field's value in the latest record.
    pub latest: f64,
}

impl Regression {
    /// Worsening as a fraction: 0.25 means 25% slower (or 25% less
    /// throughput, for lower-is-worse fields).
    pub fn severity(&self) -> f64 {
        if higher_is_worse(&self.field) {
            self.latest / self.previous - 1.0
        } else {
            1.0 - self.latest / self.previous
        }
    }
}

/// How a payload field's direction is interpreted.
fn higher_is_worse(field: &str) -> bool {
    field.ends_with("_ms") || field.ends_with("_us") || field.ends_with("_ns")
}

fn lower_is_worse(field: &str) -> bool {
    field.ends_with("speedup")
        || field.contains("throughput")
        || field.ends_with("_per_s")
        || field.ends_with("_mib_s")
        || field.contains("recovery_rate")
}

/// Compares two payloads of the same bench; every numeric field of
/// `latest` with a recognized direction that is >10% worse than in
/// `previous` yields a [`Regression`].
pub fn regressions_between(bench: &str, previous: &Json, latest: &Json) -> Vec<Regression> {
    let Json::Obj(fields) = latest else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (field, value) in fields {
        let (Some(new), Some(old)) = (
            value.as_f64(),
            previous.get(field).and_then(Json::as_f64),
        ) else {
            continue;
        };
        if !new.is_finite() || !old.is_finite() || old <= 0.0 {
            continue;
        }
        let regressed = if higher_is_worse(field) {
            new > old * 1.10
        } else if lower_is_worse(field) {
            new < old * 0.90
        } else {
            false
        };
        if regressed {
            out.push(Regression {
                bench: bench.to_string(),
                field: field.clone(),
                previous: old,
                latest: new,
            });
        }
    }
    out
}

/// Reads a history file and diffs the latest record of every bench
/// against its immediate predecessor. Benches with fewer than two records
/// have no baseline and produce nothing. Unparseable lines are skipped —
/// a truncated append must not brick the diff.
pub fn diff_latest(history: &Path) -> std::io::Result<Vec<Regression>> {
    let text = std::fs::read_to_string(history)?;
    let mut per_bench: Vec<(String, Vec<Json>)> = Vec::new();
    for line in text.lines() {
        let Some(entry) = parse(line) else {
            continue;
        };
        let Some(bench) = entry.get("bench").and_then(Json::as_str) else {
            continue;
        };
        let Some(payload) = entry.get("payload") else {
            continue;
        };
        match per_bench.iter_mut().find(|(b, _)| b == bench) {
            Some((_, records)) => records.push(payload.clone()),
            None => per_bench.push((bench.to_string(), vec![payload.clone()])),
        }
    }
    let mut out = Vec::new();
    for (bench, records) in &per_bench {
        if let [.., previous, latest] = records.as_slice() {
            out.extend(regressions_between(bench, previous, latest));
        }
    }
    Ok(out)
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn utc_now() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    let rem = secs % 86_400;
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

/// Proleptic-Gregorian date from days since the Unix epoch (the standard
/// era-decomposition algorithm, valid for any date this repo will see).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (era * 400 + yoe + i64::from(m <= 2), m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(cold_ms: f64, speedup: f64) -> Json {
        Json::obj([
            ("files", Json::Int(125)),
            ("cold_parallel_ms", Json::Num(cold_ms)),
            ("parallel_speedup", Json::Num(speedup)),
        ])
    }

    #[test]
    fn time_fields_regress_upward() {
        let got = regressions_between("lint", &payload(100.0, 4.0), &payload(120.0, 4.0));
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].field, "cold_parallel_ms");
        assert!((got[0].severity() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn rate_fields_regress_downward() {
        let got = regressions_between("lint", &payload(100.0, 4.0), &payload(100.0, 3.0));
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].field, "parallel_speedup");
    }

    #[test]
    fn ten_percent_threshold_and_counts_are_ignored() {
        // 9% slower: within budget. The `files` count never regresses.
        let got = regressions_between("lint", &payload(100.0, 4.0), &payload(109.0, 4.0));
        assert!(got.is_empty(), "{got:?}");
        let bigger = Json::obj([("files", Json::Int(999))]);
        assert!(regressions_between("lint", &payload(100.0, 4.0), &bigger).is_empty());
    }

    #[test]
    fn diff_latest_uses_last_two_records_per_bench() {
        let dir = std::env::temp_dir().join(format!("coldboot-hist-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("BENCH_history.jsonl");
        let line = |p: &Json| {
            Json::obj([
                ("bench", Json::Str("lint".into())),
                ("git_rev", Json::Str("abc".into())),
                ("utc", Json::Str("2026-01-01T00:00:00Z".into())),
                ("payload", p.clone()),
            ])
            .render_compact()
        };
        let text = format!(
            "{}\n{}\n{}\nnot json\n",
            line(&payload(500.0, 4.0)), // old outlier: must be ignored
            line(&payload(100.0, 4.0)),
            line(&payload(150.0, 4.0)),
        );
        std::fs::write(&path, text).unwrap();
        let got = diff_latest(&path).unwrap();
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].previous, 100.0);
        assert_eq!(got[0].latest, 150.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cluster_throughput_fields_classify_for_the_gate() {
        // BENCH_dumpd.json's headline fields must keep their regression
        // directions: fewer jobs/sec is a regression, and so is a longer
        // p99 queue wait. Guards the suffix classification the cluster
        // bench relies on.
        let doc = |jobs: f64, p99: f64| {
            Json::obj([
                ("jobs_per_s", Json::Num(jobs)),
                ("p99_queue_wait_us", Json::Num(p99)),
            ])
        };
        let slower = regressions_between("dumpd", &doc(1000.0, 5000.0), &doc(800.0, 5000.0));
        assert_eq!(slower.len(), 1, "{slower:?}");
        assert_eq!(slower[0].field, "jobs_per_s");
        let longer_wait =
            regressions_between("dumpd", &doc(1000.0, 5000.0), &doc(1000.0, 6000.0));
        assert_eq!(longer_wait.len(), 1, "{longer_wait:?}");
        assert_eq!(longer_wait[0].field, "p99_queue_wait_us");
        // Moving both in the *good* direction must not trip the gate.
        let better = regressions_between("dumpd", &doc(1000.0, 5000.0), &doc(1500.0, 2000.0));
        assert!(better.is_empty(), "{better:?}");
    }

    #[test]
    fn recovery_rate_fields_regress_downward() {
        // BENCH_reconstruct.json's headline: a drop in the channel-model
        // recovery rate at a given decay level is a regression the gate
        // must catch; the baseline rate classifies the same way.
        let doc = |rate: f64| {
            Json::obj([
                ("decay_0_22_reconstruct_recovery_rate", Json::Num(rate)),
                ("decay_0_22_baseline_recovery_rate", Json::Num(0.0)),
            ])
        };
        let dropped = regressions_between("reconstruct", &doc(0.9), &doc(0.5));
        assert_eq!(dropped.len(), 1, "{dropped:?}");
        assert_eq!(dropped[0].field, "decay_0_22_reconstruct_recovery_rate");
        assert!(regressions_between("reconstruct", &doc(0.9), &doc(0.95)).is_empty());
    }

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year
        assert_eq!(civil_from_days(19_782), (2024, 2, 29));
        assert_eq!(civil_from_days(20_673), (2026, 8, 8));
    }
}
