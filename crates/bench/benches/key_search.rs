//! AES key litmus and full-search throughput — the attack's Step 2 cost
//! (§III-C "Attack Performance": the paper scanned 100 MB per ~2 hours per
//! core with AES-NI).

use coldboot::dump::MemoryDump;
use coldboot::keysearch::{aes_block_litmus, search_dump, SearchConfig};
use coldboot::litmus::CandidateKey;
use coldboot_bench::workload::{generate_image, WorkloadMix};
use coldboot_crypto::aes::{KeySchedule, KeySize};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_block_litmus(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes_block_litmus");
    let mut rng = StdRng::seed_from_u64(2);
    let mut random_block = [0u8; 64];
    rng.fill(&mut random_block[..]);
    let sched = KeySchedule::expand(&[0x42u8; 32]).expect("valid key").to_bytes();
    let schedule_block: [u8; 64] = sched[64..128].try_into().expect("64 bytes");

    for size in [KeySize::Aes256, KeySize::Aes128] {
        group.bench_function(format!("random_block_{size:?}"), |b| {
            b.iter(|| std::hint::black_box(aes_block_litmus(&random_block, size, 6, false).len()))
        });
    }
    group.bench_function("schedule_block_Aes256", |b| {
        b.iter(|| {
            std::hint::black_box(aes_block_litmus(&schedule_block, KeySize::Aes256, 6, false).len())
        })
    });
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_dump");
    group.sample_size(10);
    let image = generate_image(
        1 << 20,
        WorkloadMix {
            zero: 0.0,
            constant: 0.0,
            text: 0.0,
        },
        5,
    );
    let dump = MemoryDump::new(image, 0);
    for n_keys in [64usize, 512] {
        let candidates: Vec<CandidateKey> = (0..n_keys)
            .map(|i| CandidateKey {
                key: core::array::from_fn(|j| ((i * 37 + j * 11) % 253) as u8),
                observations: 1,
            })
            .collect();
        group.throughput(Throughput::Bytes(1 << 20));
        group.bench_function(format!("1MiB_x_{n_keys}_keys"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    search_dump(&dump, &candidates, &SearchConfig::default())
                        .hits
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_litmus, bench_search);
criterion_main!(benches);
