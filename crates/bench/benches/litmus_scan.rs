//! Scrambler-key litmus test and mining throughput — the cost of the
//! attack's Step 1 (§III-B: "we were able to mine all scrambler keys by
//! running the tests on less than 16MB of the memory dump").

use coldboot::dump::MemoryDump;
use coldboot::litmus::{invariant_violations, mine_candidate_keys, MiningConfig};
use coldboot_bench::workload::{generate_image, WorkloadMix};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_litmus_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("scrambler_litmus");
    group.throughput(Throughput::Bytes(64));
    let mut rng = StdRng::seed_from_u64(1);
    let mut block = [0u8; 64];
    rng.fill(&mut block[..]);
    group.bench_function("invariant_violations_64B", |b| {
        b.iter(|| std::hint::black_box(invariant_violations(&block)))
    });
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_mining");
    group.sample_size(10);
    for mib in [1usize, 4] {
        let image = generate_image(mib << 20, WorkloadMix::default(), 3);
        let dump = MemoryDump::new(image, 0);
        group.throughput(Throughput::Bytes((mib << 20) as u64));
        group.bench_function(format!("mine_{mib}MiB"), |b| {
            b.iter(|| {
                std::hint::black_box(mine_candidate_keys(&dump, &MiningConfig::default()).len())
            })
        });
    }
    group.finish();
}

/// Isolates the two scan-engine effects on mining: sequential vs
/// work-stealing (all cores), and the group-0 prefilter on vs off. All four
/// variants return byte-identical candidates — only the wall clock moves.
fn bench_mining_engine_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_mining_engine");
    group.sample_size(10);
    let mib = 4usize;
    let image = generate_image(mib << 20, WorkloadMix::default(), 3);
    let dump = MemoryDump::new(image, 0);
    group.throughput(Throughput::Bytes((mib << 20) as u64));
    let variants = [
        ("sequential", 1, true),
        ("sequential_unfiltered", 1, false),
        ("work_stealing", 0, true), // 0 = all cores (clamped to >= 1)
        ("work_stealing_unfiltered", 0, false),
    ];
    for (name, threads, prefilter) in variants {
        let config = MiningConfig {
            threads: if threads == 0 {
                coldboot::scan::default_threads()
            } else {
                threads
            },
            prefilter,
            ..MiningConfig::default()
        };
        group.bench_function(format!("mine_{mib}MiB_{name}"), |b| {
            b.iter(|| std::hint::black_box(mine_candidate_keys(&dump, &config).len()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_litmus_single,
    bench_mining,
    bench_mining_engine_variants
);
criterion_main!(benches);
