//! Keystream throughput of the memory-interface transforms: DDR3/DDR4
//! scramblers vs the strong cipher engines that the paper proposes as
//! replacements.

use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::{AddressMapping, Microarchitecture};
use coldboot_memenc::controller::EncryptedBus;
use coldboot_memenc::engine::EngineKind;
use coldboot_scrambler::ddr3::Ddr3Scrambler;
use coldboot_scrambler::ddr4::Ddr4Scrambler;
use coldboot_scrambler::MemoryTransform;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_transform(c: &mut Criterion, name: &str, transform: &dyn MemoryTransform) {
    let mut group = c.benchmark_group("transform_keystream_64B");
    group.throughput(Throughput::Bytes(64));
    group.bench_function(name, |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xF_FFFF;
            std::hint::black_box(transform.keystream(addr))
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    let ddr3_map = AddressMapping::new(
        Microarchitecture::SandyBridge,
        DramGeometry::ddr3_dual_channel_4gib(),
    );
    let ddr4_map = AddressMapping::new(
        Microarchitecture::Skylake,
        DramGeometry::ddr4_dual_channel_8gib(),
    );
    bench_transform(c, "ddr3_scrambler", &Ddr3Scrambler::new(ddr3_map, 1));
    bench_transform(c, "ddr4_scrambler", &Ddr4Scrambler::new(ddr4_map, 1));
    bench_transform(c, "chacha8_engine", &EncryptedBus::new(EngineKind::ChaCha8, 1));
    bench_transform(c, "aes128_engine", &EncryptedBus::new(EngineKind::Aes128, 1));

    // Bulk scramble/descramble of a 64 KiB buffer.
    let ddr4 = Ddr4Scrambler::new(
        AddressMapping::new(
            Microarchitecture::Skylake,
            DramGeometry::ddr4_dual_channel_8gib(),
        ),
        7,
    );
    let mut group = c.benchmark_group("bulk_apply");
    group.throughput(Throughput::Bytes(64 << 10));
    group.bench_function("ddr4_scramble_64KiB", |b| {
        let mut buf = vec![0x5Au8; 64 << 10];
        b.iter(|| {
            ddr4.apply(0, &mut buf);
            std::hint::black_box(buf[0])
        })
    });
    group.finish();
}

criterion_group!(all, benches);
criterion_main!(all);
