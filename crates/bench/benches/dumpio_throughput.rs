//! CBDF throughput: encode/decode MiB/s, streamed-scan overhead vs the
//! in-memory path, and the end-to-end capture-file → recovered-key attack
//! measured serial vs pipelined (decode/scan overlap).
//!
//! Criterion benches for interactive work, plus a `BENCH_dumpio.json`
//! report recorded through `coldboot_bench::history` (same trajectory as
//! `attack_perf`) so `bench-diff` can gate the numbers without scraping
//! output. The attack stage always asserts the pipelined report is
//! byte-identical to the serial one before timing either — the overlap is
//! a wall-clock optimisation, never a result change.

use std::io::{BufReader, Cursor};
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

use coldboot::attack::ddr3::frequency_keys;
use coldboot::attack::{AttackConfig, AttackReport};
use coldboot::dump::MemoryDump;
use coldboot_bench::report::Json;
use coldboot_bench::workload::{generate_image, WorkloadMix};
use coldboot_crypto::aes::KeySchedule;
use coldboot_dumpio::format::DumpMeta;
use coldboot_dumpio::pipeline::{
    attack_file, attack_file_pipelined, frequency_stream, ScanControl, DEFAULT_WINDOW_BLOCKS,
};
use coldboot_dumpio::reader::DumpReader;
use coldboot_dumpio::writer::write_image;

const IMAGE_BYTES: usize = 4 << 20;

/// Scrambler keys in the attack fixture's pool, striped every
/// [`STRIPE_BLOCKS`] blocks like a key pool addressed by block-index bits.
const KEY_POOL: usize = 16;

/// Blocks per key stripe. The planted AES schedule (240 bytes) sits well
/// inside one 1024-byte stripe so its whole verification window
/// descrambles with a single pool key.
const STRIPE_BLOCKS: usize = 16;

/// A cold-boot-shaped image: mostly zero-filled pool, some high-entropy
/// regions, sparse bit flips — the case the zero-run RLE is built for.
fn realistic_image(len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0xD00D);
    let mut image = vec![0u8; len];
    // A quarter of the image is high-entropy "in use" pages.
    let mut offset = len / 8;
    while offset + 4096 <= len / 2 {
        rng.fill(&mut image[offset..offset + 2048]);
        offset += 8192;
    }
    // Sparse decay flips everywhere.
    for _ in 0..len / 2048 {
        let at = rng.gen_range(0..len);
        image[at] ^= 1u8 << rng.gen_range(0..8);
    }
    image
}

fn incompressible_image(len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut image = vec![0u8; len];
    rng.fill(&mut image[..]);
    image
}

fn cbdf_of(image: &[u8]) -> Vec<u8> {
    write_image(
        Vec::new(),
        DumpMeta::for_image(0, image.len() as u64),
        image,
    )
    .expect("encode")
}

/// A structured (Skylake-shaped) scrambler key: in each 16-byte group the
/// second 8 bytes are the first 8 XOR a repeating 2-byte mask.
fn structured_key(tag: u8) -> [u8; 64] {
    let mut key = [0u8; 64];
    for g in 0..4 {
        for i in 0..8 {
            let base = tag
                .wrapping_mul(31)
                .wrapping_add((g * 8 + i) as u8)
                .wrapping_mul(113);
            key[g * 16 + i] = base;
            key[g * 16 + 8 + i] = base ^ [0x3C ^ tag, 0xC3][i % 2];
        }
    }
    key
}

/// The attack fixture: a default-mix (zero-dominated) image with a planted
/// AES-256 key schedule, scrambled block-wise with a striped key pool, and
/// encoded as a CBDF capture file. Returns the encoded file and the master
/// key the attack must recover.
fn attack_fixture() -> (Vec<u8>, Vec<u8>) {
    let mut image = generate_image(IMAGE_BYTES, WorkloadMix::default(), 3);
    let master: Vec<u8> = (0..32).map(|i| (i * 11 + 5) as u8).collect();
    let schedule = KeySchedule::expand(&master).expect("AES-256").to_bytes();
    // Plant mid-stripe in the back half (past the mining prefix) with a
    // whole-stripe margin so the verification window stays in one stripe.
    let stripe_bytes = STRIPE_BLOCKS * 64;
    let plant = (3 << 20) + stripe_bytes + 256;
    image[plant..plant + schedule.len()].copy_from_slice(&schedule);
    for (i, block) in image.chunks_mut(64).enumerate() {
        let key = structured_key(((i / STRIPE_BLOCKS) % KEY_POOL) as u8);
        for (b, k) in block.iter_mut().zip(key.iter()) {
            *b ^= k;
        }
    }
    (cbdf_of(&image), master)
}

fn attack_config() -> AttackConfig {
    AttackConfig {
        // The pool repeats every MiB many times over; one MiB of prefix is
        // plenty to mine all 16 keys, as in the paper's 16 MB bound.
        mining_prefix_bytes: 1 << 20,
        ..AttackConfig::default()
    }
}

/// Writes the fixture capture file under the system temp dir; the caller
/// removes it when done.
fn write_fixture_file(file: &[u8], tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "coldboot-dumpio-bench-{}-{tag}.cbdf",
        std::process::id()
    ));
    std::fs::write(&path, file).expect("temp capture file");
    path
}

fn run_attack(path: &PathBuf, pipelined: bool) -> AttackReport {
    let file = std::fs::File::open(path).expect("open capture file");
    let mut reader = DumpReader::new(BufReader::new(file)).expect("header");
    let config = attack_config();
    let ctrl = ScanControl::new();
    let run = if pipelined {
        attack_file_pipelined(&mut reader, &config, DEFAULT_WINDOW_BLOCKS, &ctrl)
    } else {
        attack_file(&mut reader, &config, DEFAULT_WINDOW_BLOCKS, &ctrl)
    };
    run.expect("attack pass")
}

fn assert_reports_identical(serial: &AttackReport, pipelined: &AttackReport) {
    assert_eq!(serial.candidates, pipelined.candidates, "mined candidates");
    assert_eq!(serial.outcome.hits, pipelined.outcome.hits, "litmus hits");
    assert_eq!(
        serial.outcome.recovered, pipelined.outcome.recovered,
        "recovered keys"
    );
    assert_eq!(
        serial.outcome.blocks_scanned, pipelined.outcome.blocks_scanned,
        "blocks scanned"
    );
    assert_eq!(serial.mined_bytes, pipelined.mined_bytes, "mined bytes");
}

fn bench_encode(c: &mut Criterion) {
    let zeroish = realistic_image(IMAGE_BYTES);
    let dense = incompressible_image(IMAGE_BYTES);
    let mut group = c.benchmark_group("cbdf_encode");
    group.throughput(Throughput::Bytes(IMAGE_BYTES as u64));
    group.sample_size(10);
    group.bench_function("zero_dominated", |b| {
        b.iter(|| black_box(cbdf_of(black_box(&zeroish))))
    });
    group.bench_function("incompressible", |b| {
        b.iter(|| black_box(cbdf_of(black_box(&dense))))
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let zeroish = cbdf_of(&realistic_image(IMAGE_BYTES));
    let dense = cbdf_of(&incompressible_image(IMAGE_BYTES));
    let mut group = c.benchmark_group("cbdf_decode");
    group.throughput(Throughput::Bytes(IMAGE_BYTES as u64));
    group.sample_size(10);
    group.bench_function("zero_dominated", |b| {
        b.iter(|| {
            let mut r = DumpReader::new(Cursor::new(black_box(&zeroish))).expect("header");
            black_box(r.read_to_memory().expect("decode"))
        })
    });
    group.bench_function("incompressible", |b| {
        b.iter(|| {
            let mut r = DumpReader::new(Cursor::new(black_box(&dense))).expect("header");
            black_box(r.read_to_memory().expect("decode"))
        })
    });
    group.finish();
}

fn bench_streamed_scan(c: &mut Criterion) {
    let image = realistic_image(IMAGE_BYTES);
    let file = cbdf_of(&image);
    let dump = MemoryDump::new(image, 0);
    let mut group = c.benchmark_group("frequency_scan");
    group.throughput(Throughput::Bytes(IMAGE_BYTES as u64));
    group.sample_size(10);
    group.bench_function("in_memory", |b| {
        b.iter(|| black_box(frequency_keys(black_box(&dump), 8)))
    });
    group.bench_function("streamed", |b| {
        b.iter(|| {
            let mut r = DumpReader::new(Cursor::new(black_box(&file))).expect("header");
            black_box(
                frequency_stream(&mut r, 8, 16 * 1024, &ScanControl::new()).expect("stream"),
            )
        })
    });
    group.finish();
}

fn bench_attack_file(c: &mut Criterion) {
    let (file, _master) = attack_fixture();
    let path = write_fixture_file(&file, "criterion");
    let mut group = c.benchmark_group("attack_file");
    group.throughput(Throughput::Bytes(IMAGE_BYTES as u64));
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(run_attack(&path, false)))
    });
    group.bench_function("pipelined", |b| {
        b.iter(|| black_box(run_attack(&path, true)))
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

/// One timed pass per figure, recorded as `BENCH_dumpio.json` plus a
/// `BENCH_history.jsonl` entry so `bench-diff` gates the rates.
fn emit_report() {
    fn mib_per_s(bytes: usize, seconds: f64) -> f64 {
        bytes as f64 / (1 << 20) as f64 / seconds
    }

    let image = realistic_image(IMAGE_BYTES);
    let start = Instant::now();
    let file = cbdf_of(&image);
    let encode_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut r = DumpReader::new(Cursor::new(&file)).expect("header");
    let decoded = r.read_to_memory().expect("decode");
    let decode_s = start.elapsed().as_secs_f64();
    assert_eq!(decoded.bytes().len(), IMAGE_BYTES);

    let dump = MemoryDump::new(image, 0);
    let start = Instant::now();
    let in_memory = frequency_keys(&dump, 8);
    let in_memory_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut r = DumpReader::new(Cursor::new(&file)).expect("header");
    let streamed = frequency_stream(&mut r, 8, 16 * 1024, &ScanControl::new()).expect("stream");
    let streamed_s = start.elapsed().as_secs_f64();
    assert_eq!(in_memory, streamed, "streamed scan must be byte-identical");

    // End-to-end capture-file → recovered-key, serial vs pipelined. One
    // warm/identity pass each, then the timed pass.
    let (attack_cbdf, master) = attack_fixture();
    let attack_path = write_fixture_file(&attack_cbdf, "report");
    let warm_serial = run_attack(&attack_path, false);
    let warm_pipelined = run_attack(&attack_path, true);
    assert_reports_identical(&warm_serial, &warm_pipelined);
    assert!(
        warm_serial
            .outcome
            .recovered
            .iter()
            .any(|r| r.master_key == master),
        "attack must recover the planted AES-256 master key"
    );
    let start = Instant::now();
    let serial = run_attack(&attack_path, false);
    let attack_serial_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let pipelined = run_attack(&attack_path, true);
    let attack_pipelined_s = start.elapsed().as_secs_f64();
    assert_reports_identical(&serial, &pipelined);
    let _ = std::fs::remove_file(&attack_path);

    let doc = Json::obj([
        ("bench", Json::Str("dumpio_throughput".into())),
        ("image_bytes", Json::Int(IMAGE_BYTES as i64)),
        ("cbdf_bytes", Json::Int(file.len() as i64)),
        (
            "compression_ratio",
            Json::Num(IMAGE_BYTES as f64 / file.len() as f64),
        ),
        ("encode_mib_per_s", Json::Num(mib_per_s(IMAGE_BYTES, encode_s))),
        ("decode_mib_per_s", Json::Num(mib_per_s(IMAGE_BYTES, decode_s))),
        (
            "freq_scan_in_memory_mib_per_s",
            Json::Num(mib_per_s(IMAGE_BYTES, in_memory_s)),
        ),
        (
            "freq_scan_streamed_mib_per_s",
            Json::Num(mib_per_s(IMAGE_BYTES, streamed_s)),
        ),
        (
            "streamed_overhead_ratio",
            Json::Num(streamed_s / in_memory_s.max(1e-9)),
        ),
        (
            "attack_serial_mib_per_s",
            Json::Num(mib_per_s(IMAGE_BYTES, attack_serial_s)),
        ),
        (
            "attack_pipelined_mib_per_s",
            Json::Num(mib_per_s(IMAGE_BYTES, attack_pipelined_s)),
        ),
        (
            "attack_pipeline_speedup",
            Json::Num(attack_serial_s / attack_pipelined_s.max(1e-9)),
        ),
        (
            "attack_recovered_keys",
            Json::Int(serial.outcome.recovered.len() as i64),
        ),
    ]);
    match coldboot_bench::history::record("dumpio", &doc) {
        Ok(()) => println!("wrote BENCH_dumpio.json"),
        Err(e) => eprintln!("could not write BENCH_dumpio.json: {e}"),
    }
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_streamed_scan,
    bench_attack_file
);

fn main() {
    emit_report();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
