//! Analyzer throughput: cold vs warm cache, sequential vs parallel.
//!
//! `coldboot-lint` gates tier-1 CI, so its latency is paid on every push;
//! this bench keeps the two optimisations that make that affordable
//! honest. The work-stealing file fan-out must beat a sequential sweep on
//! the real workspace, and the content-hash cache must make a warm run of
//! an unchanged tree nearly free (it re-analyzes nothing — the warm gate
//! test asserts the zero, this bench tracks the wall-clock payoff). The
//! v3 interprocedural pass adds a summary phase (fact extraction plus the
//! call-graph fixpoint) ahead of the checks; its cold and warm cost is
//! measured separately so the overhead of going cross-function stays
//! visible. The v4 concurrency pass (thread-role graph plus the four
//! concurrency rule families) runs on top of the same summaries; its
//! standalone cost is tracked too so role-graph growth shows up in the
//! history rather than hiding inside the cold totals. Emits
//! `BENCH_lint.json` (and appends to `BENCH_history.jsonl`) so CI can
//! chart the ratios without scraping criterion output.

use std::path::{Path, PathBuf};
use std::time::Instant;

use coldboot_analyzer::{
    concurrency_findings, lint_workspace_with, load_config, summarize_sources,
    walk::collect_sources, LintConfig, LintOptions, RunStats,
};
use coldboot_bench::{history, report::Json};
use criterion::{criterion_group, Criterion};
use std::hint::black_box;

/// The workspace root, two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn options(threads: usize, cache_dir: Option<PathBuf>) -> LintOptions {
    LintOptions {
        threads,
        cache_dir,
        // The CI gate runs with stale-allow checking on; match it so the
        // measured work is the gate's work.
        check_stale_allows: true,
    }
}

fn lint_once(root: &Path, config: &LintConfig, opts: &LintOptions) -> RunStats {
    match lint_workspace_with(root, config, opts) {
        Ok(run) => run.stats,
        Err(e) => panic!("workspace sources are readable: {e}"),
    }
}

fn scratch_cache_dir() -> PathBuf {
    std::env::temp_dir().join(format!("coldboot-lint-bench-{}", std::process::id()))
}

fn bench_lint(c: &mut Criterion) {
    let root = workspace_root();
    let config = match load_config(&root) {
        Ok(config) => config,
        Err(e) => panic!("lint.toml parses: {e}"),
    };
    let cache_dir = scratch_cache_dir();
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut group = c.benchmark_group("lint_throughput");
    group.sample_size(10);
    group.bench_function("workspace_cold_sequential", |b| {
        let opts = options(1, None);
        b.iter(|| black_box(lint_once(&root, &config, &opts)))
    });
    group.bench_function("workspace_cold_parallel", |b| {
        let opts = options(0, None);
        b.iter(|| black_box(lint_once(&root, &config, &opts)))
    });
    group.bench_function("workspace_warm_cache", |b| {
        let opts = options(0, Some(cache_dir.clone()));
        lint_once(&root, &config, &opts); // populate
        b.iter(|| black_box(lint_once(&root, &config, &opts)))
    });
    group.bench_function("summary_phase_cold", |b| {
        let files = collect_sources(&root).expect("workspace sources are readable");
        let opts = options(0, None);
        b.iter(|| black_box(summarize_sources(&files, &opts)))
    });
    group.bench_function("concurrency_phase_cold", |b| {
        let files = collect_sources(&root).expect("workspace sources are readable");
        let opts = options(0, None);
        b.iter(|| black_box(concurrency_findings(&files, &opts)))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

/// Best-of-`samples` wall time: the analysis is a deterministic amount of
/// work, so the minimum is the noise-robust estimator (same rationale as
/// the metrics-overhead report).
fn best_of(samples: usize, mut pass: impl FnMut() -> RunStats) -> (f64, RunStats) {
    let mut best = f64::INFINITY;
    let mut stats = RunStats::default();
    for _ in 0..samples {
        let start = Instant::now();
        stats = black_box(pass());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, stats)
}

fn emit_report() {
    const SAMPLES: usize = 5;
    let root = workspace_root();
    let config = match load_config(&root) {
        Ok(config) => config,
        Err(e) => panic!("lint.toml parses: {e}"),
    };

    let seq_opts = options(1, None);
    let par_opts = options(0, None);
    let (cold_seq_s, seq_stats) = best_of(SAMPLES, || lint_once(&root, &config, &seq_opts));
    let (cold_par_s, par_stats) = best_of(SAMPLES, || lint_once(&root, &config, &par_opts));
    assert_eq!(
        seq_stats.files, par_stats.files,
        "sequential and parallel sweeps must cover the same file set"
    );

    let cache_dir = scratch_cache_dir();
    let _ = std::fs::remove_dir_all(&cache_dir);
    let warm_opts = options(0, Some(cache_dir.clone()));
    lint_once(&root, &config, &warm_opts); // populate the cache
    let (warm_s, warm_stats) = best_of(SAMPLES, || lint_once(&root, &config, &warm_opts));
    assert_eq!(
        warm_stats.reanalyzed, 0,
        "warm run over an unchanged workspace must re-analyze nothing"
    );

    // The interprocedural summary phase in isolation: cold (extract every
    // file's facts, then fixpoint) and warm (facts from the cache, the
    // fixpoint always re-runs — it is global and cheap).
    let files = match collect_sources(&root) {
        Ok(files) => files,
        Err(e) => panic!("workspace sources are readable: {e}"),
    };
    let mut summary_fns = 0usize;
    let (summary_cold_s, _) = best_of(SAMPLES, || {
        let run = summarize_sources(&files, &options(0, None));
        summary_fns = run.stats.fns;
        RunStats::default()
    });
    let (summary_warm_s, _) = best_of(SAMPLES, || {
        let run = summarize_sources(&files, &warm_opts);
        assert_eq!(run.summarized, 0, "summary cache must be warm here");
        RunStats::default()
    });

    // The v4 concurrency pass in isolation: summary phase plus the
    // thread-role graph and the four concurrency rule families. Measured
    // against the warm summary cache so the delta over `summary_warm_ms`
    // is the role-graph + rule cost itself. The workspace is triaged
    // clean, so the finding count doubles as a gate sanity check.
    let mut concurrency_count = 0usize;
    let (concurrency_s, _) = best_of(SAMPLES, || {
        concurrency_count = concurrency_findings(&files, &warm_opts).len();
        RunStats::default()
    });
    let _ = std::fs::remove_dir_all(&cache_dir);

    let doc = Json::obj([
        ("bench", Json::Str("lint_throughput".into())),
        ("files", Json::Int(seq_stats.files as i64)),
        ("samples", Json::Int(SAMPLES as i64)),
        ("cold_sequential_ms", Json::Num(cold_seq_s * 1e3)),
        ("cold_parallel_ms", Json::Num(cold_par_s * 1e3)),
        ("warm_cache_ms", Json::Num(warm_s * 1e3)),
        (
            "parallel_speedup",
            Json::Num(cold_seq_s / cold_par_s.max(1e-9)),
        ),
        (
            "warm_speedup",
            Json::Num(cold_par_s / warm_s.max(1e-9)),
        ),
        ("warm_reanalyzed", Json::Int(warm_stats.reanalyzed as i64)),
        ("summary_fns", Json::Int(summary_fns as i64)),
        ("summary_cold_ms", Json::Num(summary_cold_s * 1e3)),
        ("summary_warm_ms", Json::Num(summary_warm_s * 1e3)),
        ("concurrency_pass_ms", Json::Num(concurrency_s * 1e3)),
        ("concurrency_findings", Json::Int(concurrency_count as i64)),
    ]);
    if let Err(e) = history::record("lint", &doc) {
        eprintln!("could not write BENCH_lint.json: {e}");
    } else {
        println!("wrote BENCH_lint.json (+ BENCH_history.jsonl)");
    }
}

criterion_group!(benches, bench_lint);

fn main() {
    emit_report();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
