//! Observability tax: mining with metric handles attached vs detached.
//!
//! The metrics layer promises two things the rest of the workspace leans
//! on: a **zero**-cost detached path (every hot loop guards its clock
//! reads and atomics behind `Option` handles) and a bounded attached cost
//! (totals are folded worker-locally and published once per absorbed
//! window, so the per-block path never touches a shared cache line).
//! This bench measures both on the canonical 1 MiB mining workload and
//! writes `BENCH_metrics.json` so CI can track the overhead without
//! scraping criterion output; the report pass also asserts the attached
//! run returns byte-identical candidates and stays within the 2% bound.

use std::time::Instant;

use coldboot::dump::MemoryDump;
use coldboot::litmus::{KeyMiner, MiningConfig, MiningMetrics};
use coldboot_bench::report::Json;
use coldboot_bench::workload::{generate_image, WorkloadMix};
use coldboot_metrics::{MetricsRegistry, SnapshotValue};
use criterion::{criterion_group, Criterion, Throughput};
use std::hint::black_box;

const IMAGE_BYTES: usize = 1 << 20;

/// The acceptance bound: attached mining may cost at most this much over
/// the detached baseline on the 1 MiB workload.
const BOUND_PCT: f64 = 2.0;

/// Single-threaded mining isolates the per-block instrumentation cost;
/// with work stealing on, scheduling noise would dwarf a 2% delta.
fn bench_config() -> MiningConfig {
    MiningConfig {
        threads: 1,
        ..MiningConfig::default()
    }
}

fn mine(dump: &MemoryDump, metrics: Option<&MetricsRegistry>) -> usize {
    let mut miner = KeyMiner::new(&bench_config());
    if let Some(registry) = metrics {
        miner = miner.with_metrics(MiningMetrics::register(registry));
    }
    miner.absorb(dump, 0);
    miner.finish().len()
}

fn bench_mining_overhead(c: &mut Criterion) {
    let image = generate_image(IMAGE_BYTES, WorkloadMix::default(), 3);
    let dump = MemoryDump::new(image, 0);
    let registry = MetricsRegistry::new();
    let mut group = c.benchmark_group("metrics_overhead");
    group.throughput(Throughput::Bytes(IMAGE_BYTES as u64));
    group.sample_size(10);
    group.bench_function("mine_1MiB_detached", |b| {
        b.iter(|| black_box(mine(black_box(&dump), None)))
    });
    group.bench_function("mine_1MiB_attached", |b| {
        b.iter(|| black_box(mine(black_box(&dump), Some(&registry))))
    });
    group.finish();
}

/// The primitives themselves, so a regression in the registry shows up
/// even when the mining fold amortises it away.
fn bench_primitives(c: &mut Criterion) {
    let registry = MetricsRegistry::new();
    let counter = registry.counter("bench_ticks");
    let histogram = registry.latency_histogram("bench_lat_us");
    let mut group = c.benchmark_group("metrics_primitives");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("histogram_observe", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(97) & 0xFFFF;
            histogram.observe(black_box(v));
        })
    });
    group.finish();
}

/// Best-of-`samples` wall time for one full mining pass. Criterion's
/// statistics are better for interactive runs; for the report we want one
/// noise-robust number, and the minimum is the standard estimator when
/// the quantity under test is a deterministic amount of work.
fn best_of(samples: usize, mut pass: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut result = 0;
    for _ in 0..samples {
        let start = Instant::now();
        result = black_box(pass());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

fn emit_report() {
    const SAMPLES: usize = 7;
    let image = generate_image(IMAGE_BYTES, WorkloadMix::default(), 3);
    let dump = MemoryDump::new(image, 0);

    // Identity first: the attached run must not change the answer. Counts
    // only in the assert message — candidate bytes never reach a sink.
    let registry = MetricsRegistry::new();
    let detached_candidates = {
        let mut miner = KeyMiner::new(&bench_config());
        miner.absorb(&dump, 0);
        miner.finish()
    };
    let attached_candidates = {
        let mut miner =
            KeyMiner::new(&bench_config()).with_metrics(MiningMetrics::register(&registry));
        miner.absorb(&dump, 0);
        miner.finish()
    };
    assert!(
        detached_candidates == attached_candidates,
        "attached mining diverged: {} vs {} candidates",
        detached_candidates.len(),
        attached_candidates.len(),
    );
    let mined_blocks = registry
        .snapshot()
        .into_iter()
        .find(|m| m.name == "mine_blocks")
        .map(|m| match m.value {
            SnapshotValue::Counter(v) => v,
            _ => 0,
        })
        .unwrap_or(0);
    assert_eq!(
        mined_blocks as usize,
        IMAGE_BYTES / 64,
        "attached run must count every block exactly once"
    );

    // Warm up once (page in the image, settle the branch predictors),
    // then take the best of SAMPLES passes each way.
    mine(&dump, None);
    let (detached_s, detached_n) = best_of(SAMPLES, || mine(&dump, None));
    let report_registry = MetricsRegistry::new();
    let (attached_s, attached_n) = best_of(SAMPLES, || mine(&dump, Some(&report_registry)));
    assert_eq!(detached_n, attached_n, "candidate count moved between passes");

    let overhead_pct = (attached_s / detached_s.max(1e-9) - 1.0) * 100.0;
    let doc = Json::obj([
        ("bench", Json::Str("metrics_overhead".into())),
        ("image_bytes", Json::Int(IMAGE_BYTES as i64)),
        ("samples", Json::Int(SAMPLES as i64)),
        ("candidates", Json::Int(detached_n as i64)),
        ("detached_ms", Json::Num(detached_s * 1e3)),
        ("attached_ms", Json::Num(attached_s * 1e3)),
        ("overhead_pct", Json::Num(overhead_pct)),
        ("bound_pct", Json::Num(BOUND_PCT)),
        ("within_bound", Json::Bool(overhead_pct <= BOUND_PCT)),
    ]);
    if let Err(e) = coldboot_bench::history::record("metrics", &doc) {
        eprintln!("could not write BENCH_metrics.json: {e}");
    } else {
        println!("wrote BENCH_metrics.json (+ BENCH_history.jsonl)");
    }
    assert!(
        overhead_pct <= BOUND_PCT,
        "attached mining overhead {overhead_pct:.2}% exceeds the {BOUND_PCT}% bound \
         ({:.2} ms detached vs {:.2} ms attached)",
        detached_s * 1e3,
        attached_s * 1e3,
    );
}

criterion_group!(benches, bench_mining_overhead, bench_primitives);

fn main() {
    emit_report();
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
