//! Coordinator throughput under load: sustained jobs/sec and queue-wait
//! percentiles with hundreds of concurrent clients and thousands of
//! queued jobs against 2–8 local `dumpd` workers.
//!
//! Every job is a single-shard `frequency` census over a small synthetic
//! CBDF, so the measured quantity is the *coordination* cost — accept,
//! rate/quota bookkeeping, shard dispatch, worker round-trip, merge — not
//! the scan itself. The client swarm submits its whole budget up front
//! (deep queue) and then polls to completion, which is exactly the shape
//! a reconstruction fleet produces. Emits `BENCH_dumpd.json` via the
//! history recorder (headline fields: `jobs_per_s`,
//! `p50_queue_wait_us`, `p99_queue_wait_us` at the largest worker count;
//! `bench-diff` gates all three) and prints the workers × jobs/sec
//! scaling curve for EXPERIMENTS.

use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use coldboot_bench::history;
use coldboot_bench::report::Json;
use coldboot_cluster::backend::BackendOptions;
use coldboot_cluster::server::{ClusterConfig, ClusterServer};
use coldboot_dumpio::format::DumpMeta;
use coldboot_dumpio::json as wire_json;
use coldboot_dumpio::service::{DumpService, ServiceConfig};
use coldboot_dumpio::writer::write_image;

/// Concurrent client connections (the issue floor is 100).
const CLIENTS: usize = 120;
/// Total jobs across all clients (the issue floor is 1000).
const JOBS: usize = 1200;
/// Worker fleet sizes for the scaling curve.
const WORKER_SCALES: [usize; 3] = [2, 4, 8];
/// Synthetic image size: small enough that the scan is negligible.
const IMAGE_BYTES: usize = 64 * 1024;

fn make_dump() -> PathBuf {
    let image = coldboot_bench::workload::generate_image(
        IMAGE_BYTES,
        coldboot_bench::workload::WorkloadMix::default(),
        7,
    );
    let file = write_image(
        Vec::new(),
        DumpMeta::for_image(0, image.len() as u64),
        &image,
    )
    .expect("encode bench dump");
    let path = std::env::temp_dir().join(format!(
        "coldboot-cluster-bench-{}.cbdf",
        std::process::id()
    ));
    std::fs::write(&path, file).expect("write bench dump");
    path
}

fn start_worker() -> DumpService {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker");
    DumpService::start(
        listener,
        ServiceConfig {
            workers: 2,
            queue_limit: 64,
        },
    )
    .expect("start dumpd")
}

/// Linear interpolation inside the first histogram bucket that covers
/// quantile `q` (buckets are `(inclusive bound, count)`; the last bound
/// is `u64::MAX` and saturates to its predecessor).
fn percentile_us(buckets: &[(u64, u64)], count: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let rank = (q * count as f64).max(1.0);
    let mut cumulative = 0u64;
    let mut previous_bound = 0u64;
    for &(bound, n) in buckets {
        let next = cumulative + n;
        if (next as f64) >= rank && n > 0 {
            if bound == u64::MAX {
                return previous_bound as f64;
            }
            let into = (rank - cumulative as f64) / n as f64;
            return previous_bound as f64 + into * (bound - previous_bound) as f64;
        }
        cumulative = next;
        if bound != u64::MAX {
            previous_bound = bound;
        }
    }
    previous_bound as f64
}

struct ScaleResult {
    workers: usize,
    jobs_per_s: f64,
    p50_queue_wait_us: f64,
    p99_queue_wait_us: f64,
}

/// One full swarm run against `worker_count` local workers.
fn run_scale(worker_count: usize, dump: &PathBuf) -> ScaleResult {
    let workers: Vec<DumpService> = (0..worker_count).map(|_| start_worker()).collect();
    let mut config = ClusterConfig::new(
        workers
            .iter()
            .map(|w| w.local_addr().to_string())
            .collect(),
    );
    config.shards = 1; // one shard per job: measure coordination, not splitting
    config.backend = BackendOptions {
        poll_interval: Duration::from_millis(2),
        ..BackendOptions::default()
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind coordinator");
    let cluster = ClusterServer::start(listener, config).expect("start coordinator");
    let addr = cluster.local_addr();
    let per_client = JOBS / CLIENTS;

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(move || {
                use std::io::{BufRead, BufReader, Write};
                let stream = std::net::TcpStream::connect(addr).expect("connect swarm client");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                let mut exchange = |request: String| -> Json {
                    writer.write_all(request.as_bytes()).expect("send");
                    line.clear();
                    reader.read_line(&mut line).expect("receive");
                    wire_json::parse(line.trim()).expect("well-formed reply")
                };
                // Submit the whole budget up front: a deep queue is the
                // regime the percentiles are about.
                let submit = format!(
                    "{{\"verb\":\"submit\",\"kind\":\"frequency\",\"dump\":{},\"top_keys\":4}}\n",
                    Json::Str(dump.to_string_lossy().into_owned()).render_compact()
                );
                let ids: Vec<i64> = (0..per_client)
                    .map(|_| {
                        let reply = exchange(submit.clone());
                        assert_eq!(
                            reply.get("ok").and_then(Json::as_bool),
                            Some(true),
                            "submit rejected: {}",
                            reply.render_compact()
                        );
                        reply.get("id").and_then(Json::as_i64).expect("job id")
                    })
                    .collect();
                for id in ids {
                    loop {
                        let status =
                            exchange(format!("{{\"verb\":\"status\",\"id\":{id}}}\n"));
                        match status.get("state").and_then(Json::as_str) {
                            Some("done") => break,
                            Some("failed") => panic!(
                                "bench job failed: {}",
                                status.render_compact()
                            ),
                            _ => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let registry = cluster.metrics_registry();
    let wait = registry.latency_histogram("cluster_shard_queue_wait_us");
    let result = ScaleResult {
        workers: worker_count,
        jobs_per_s: JOBS as f64 / elapsed.max(1e-9),
        p50_queue_wait_us: percentile_us(&wait.buckets(), wait.count(), 0.50),
        p99_queue_wait_us: percentile_us(&wait.buckets(), wait.count(), 0.99),
    };
    cluster.shutdown();
    for worker in workers {
        worker.shutdown();
    }
    result
}

fn main() {
    // cargo passes `--bench` (and criterion-style flags) to custom
    // harnesses; none of them configure this bench.
    let dump = make_dump();
    println!(
        "cluster_throughput: {CLIENTS} clients x {} jobs each = {JOBS} jobs per scale",
        JOBS / CLIENTS
    );
    println!("workers  jobs/s   p50 wait (ms)  p99 wait (ms)");
    let mut scales: Vec<ScaleResult> = Vec::new();
    for worker_count in WORKER_SCALES {
        let result = run_scale(worker_count, &dump);
        println!(
            "{:>7}  {:>7.0}  {:>13.2}  {:>13.2}",
            result.workers,
            result.jobs_per_s,
            result.p50_queue_wait_us / 1e3,
            result.p99_queue_wait_us / 1e3,
        );
        scales.push(result);
    }
    let _ = std::fs::remove_file(&dump);

    // Headline (gated) numbers come from the largest fleet; the smaller
    // scales ride along unclassified so the curve is recorded without
    // gating on the deliberately saturated configurations.
    let headline = scales.last().expect("at least one scale");
    let mut pairs = vec![
        ("bench".to_string(), Json::Str("cluster_throughput".into())),
        ("clients".to_string(), Json::Int(CLIENTS as i64)),
        ("jobs".to_string(), Json::Int(JOBS as i64)),
        ("workers".to_string(), Json::Int(headline.workers as i64)),
        ("jobs_per_s".to_string(), Json::Num(headline.jobs_per_s)),
        (
            "p50_queue_wait_us".to_string(),
            Json::Num(headline.p50_queue_wait_us),
        ),
        (
            "p99_queue_wait_us".to_string(),
            Json::Num(headline.p99_queue_wait_us),
        ),
    ];
    for scale in &scales {
        pairs.push((
            format!("scale_w{}_jobs_per_sec", scale.workers),
            Json::Num(scale.jobs_per_s),
        ));
    }
    let doc = Json::Obj(pairs);
    match history::record("dumpd", &doc) {
        Ok(()) => println!("wrote BENCH_dumpd.json (+ BENCH_history.jsonl)"),
        Err(e) => eprintln!("could not write BENCH_dumpd.json: {e}"),
    }
}
