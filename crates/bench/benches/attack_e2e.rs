//! End-to-end cold boot attack latency on a small machine: victim setup,
//! frozen transplant, dump, mine, search, master-key recovery.
//!
//! This is the criterion companion of the `attack_e2e` binary (which
//! narrates the full demonstration); here we measure the complete pipeline
//! as one unit.

use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot_bench::machines::micro_geometry;
use coldboot_bench::workload::{fill_realistic, WorkloadMix};
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::{MountedVolume, Volume};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn full_attack() -> usize {
    let volume = Volume::create(b"pw", b"bench secret", &mut StdRng::seed_from_u64(1));
    let geometry = micro_geometry();
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 1);
    let size = victim.capacity() as usize;
    victim
        .insert_module(DramModule::with_quality(size, 3, 0.35))
        .expect("fresh socket");
    fill_realistic(&mut victim, WorkloadMix::mostly_idle(), 11).expect("module present");
    MountedVolume::mount(&mut victim, &volume, b"pw", 0x4_0040).expect("mountable");
    let mut attacker =
        Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 2);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    let report = run_ddr4_attack(&dump, &AttackConfig::default());
    report.outcome.recovered.len()
}

fn bench_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("cold_boot_attack");
    group.sample_size(10);
    group.bench_function("e2e_1MiB_ddr4", |b| {
        b.iter(|| {
            let recovered = full_attack();
            assert!(recovered >= 2, "attack must recover both XTS schedules");
            std::hint::black_box(recovered)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_attack);
criterion_main!(benches);
