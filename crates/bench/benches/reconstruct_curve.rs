//! Recovery rate vs. decay: raw-distance search against channel-model
//! reconstruction.
//!
//! Sweeps the charged-bit decay fraction across the transplant regimes
//! the paper's §IV retention data spans — from a hard freeze (≈2%) to a
//! warm, slow transfer (≈30%) — and measures, per level, what fraction of
//! trial dumps each pipeline recovers the exact AES-256 master key from:
//!
//! * **baseline** — the decay-hardened `SearchConfig::deep()` preset,
//!   raw Hamming accept/reject (the historical pipeline).
//! * **reconstruct** — channel-model scoring plus branch-and-bound
//!   key-schedule correction against a ground-state second read.
//!
//! Every trial plants a scrambled AES-256 schedule in a small synthetic
//! image and decays it against a random ground state with the library's
//! own `apply_decay`, so both pipelines see exactly the channel the
//! corrector models. Emits `BENCH_reconstruct.json` via the history
//! recorder; the `*_recovery_rate` fields classify lower-is-worse, so
//! `bench-diff` gates the curve. Timing fields
//! (`decay_*_reconstruct_us`) record mean per-trial search latency.

use std::sync::Arc;
use std::time::Instant;

use coldboot::dump::MemoryDump;
use coldboot::keysearch::{search_dump, SearchConfig};
use coldboot::litmus::CandidateKey;
use coldboot::reconstruct::ReconstructConfig;
use coldboot_bench::history;
use coldboot_bench::report::Json;
use coldboot_crypto::aes::KeySchedule;
use coldboot_dram::retention::{apply_decay, BitChannel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Charged-bit decay fractions swept, hard freeze → warm transfer.
const DECAY_LEVELS: [f64; 5] = [0.02, 0.08, 0.15, 0.22, 0.30];
/// Independent decay realizations per level (rate denominator).
const TRIALS: u64 = 8;
/// Filler bytes ahead of the planted schedule.
const PRE_BYTES: usize = 192;

fn scrambler_keys() -> Vec<[u8; 64]> {
    (0..4u8)
        .map(|t| core::array::from_fn(|i| (i as u8).wrapping_mul(7).wrapping_add(t * 53) ^ 0x5A))
        .collect()
}

/// A small image with the expanded schedule planted after `PRE_BYTES` of
/// filler, XOR-scrambled block by block with rotating candidate keys —
/// the same shape the end-to-end attack sees after key mining.
fn build_image(sched: &[u8], keys: &[[u8; 64]]) -> Vec<u8> {
    let mut image = vec![0x11u8; PRE_BYTES];
    image.extend_from_slice(sched);
    while !image.len().is_multiple_of(64) || image.len() < PRE_BYTES + sched.len() + 128 {
        image.push(0x22);
    }
    for (i, chunk) in image.chunks_mut(64).enumerate() {
        let k = &keys[i % keys.len()];
        for (b, kb) in chunk.iter_mut().zip(k.iter()) {
            *b ^= kb;
        }
    }
    image
}

struct Level {
    decay: f64,
    baseline_rate: f64,
    reconstruct_rate: f64,
    baseline_us: f64,
    reconstruct_us: f64,
}

fn run_level(
    decay: f64,
    sched: &[u8],
    master: &[u8],
    keys: &[[u8; 64]],
    candidates: &[CandidateKey],
) -> Level {
    let mut baseline_hits = 0u64;
    let mut reconstruct_hits = 0u64;
    let mut baseline_us = 0.0;
    let mut reconstruct_us = 0.0;
    for trial in 0..TRIALS {
        let mut image = build_image(sched, keys);
        let mut rng = StdRng::seed_from_u64(decay.to_bits() ^ trial.wrapping_mul(0x9E37_79B9));
        let mut ground = vec![0u8; image.len()];
        rng.fill(&mut ground[..]);
        apply_decay(&mut image, &ground, decay, trial.wrapping_add(1));
        let dump = MemoryDump::new(image, 0);

        let start = Instant::now();
        let base = search_dump(&dump, candidates, &SearchConfig::deep());
        baseline_us += start.elapsed().as_secs_f64() * 1e6;
        baseline_hits += u64::from(base.recovered.iter().any(|r| r.master_key == master));

        let config = SearchConfig {
            reconstruct: Some(ReconstructConfig::new(
                BitChannel::from_decay_fraction(decay),
                Arc::new(MemoryDump::new(ground, 0)),
            )),
            ..SearchConfig::default()
        };
        let start = Instant::now();
        let outcome = search_dump(&dump, candidates, &config);
        reconstruct_us += start.elapsed().as_secs_f64() * 1e6;
        reconstruct_hits += u64::from(outcome.recovered.iter().any(|r| r.master_key == master));
    }
    Level {
        decay,
        baseline_rate: baseline_hits as f64 / TRIALS as f64,
        reconstruct_rate: reconstruct_hits as f64 / TRIALS as f64,
        baseline_us: baseline_us / TRIALS as f64,
        reconstruct_us: reconstruct_us / TRIALS as f64,
    }
}

/// `0.22` → `"0_22"`, a JSON-key-safe rendering of the decay level.
fn level_tag(decay: f64) -> String {
    format!("{decay:.2}").replace('.', "_")
}

fn main() {
    let master: [u8; 32] = core::array::from_fn(|i| (i as u8).wrapping_mul(37) ^ 0x5A);
    let sched = KeySchedule::expand(&master).expect("valid key").to_bytes();
    let keys = scrambler_keys();
    let candidates: Vec<CandidateKey> = keys
        .iter()
        .map(|k| CandidateKey { key: *k, observations: 1 })
        .collect();

    println!("reconstruct_curve: {TRIALS} trials per decay level");
    println!("decay  baseline  reconstruct  mean reconstruct (ms)");
    let mut pairs = vec![
        ("bench".to_string(), Json::Str("reconstruct_curve".into())),
        ("trials".to_string(), Json::Int(TRIALS as i64)),
    ];
    let mut levels = Vec::new();
    for decay in DECAY_LEVELS {
        let level = run_level(decay, &sched, &master, &keys, &candidates);
        println!(
            "{:>5.2}  {:>8.2}  {:>11.2}  {:>21.2}",
            level.decay,
            level.baseline_rate,
            level.reconstruct_rate,
            level.reconstruct_us / 1e3,
        );
        levels.push(level);
    }
    for level in &levels {
        let tag = level_tag(level.decay);
        pairs.push((
            format!("decay_{tag}_baseline_recovery_rate"),
            Json::Num(level.baseline_rate),
        ));
        pairs.push((
            format!("decay_{tag}_reconstruct_recovery_rate"),
            Json::Num(level.reconstruct_rate),
        ));
        pairs.push((format!("decay_{tag}_baseline_us"), Json::Num(level.baseline_us)));
        pairs.push((
            format!("decay_{tag}_reconstruct_us"),
            Json::Num(level.reconstruct_us),
        ));
    }
    let payload = Json::Obj(pairs);
    match history::record("reconstruct", &payload) {
        Ok(()) => println!("wrote BENCH_reconstruct.json"),
        Err(e) => eprintln!("could not write BENCH_reconstruct.json: {e}"),
    }
}
