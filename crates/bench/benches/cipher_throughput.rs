//! Keystream-generation throughput of the candidate ciphers (software
//! implementations; the paper's hardware numbers live in `table2`).

use coldboot_crypto::chacha::{ChaCha, Rounds};
use coldboot_crypto::ctr::AesCtr;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_keystream(c: &mut Criterion) {
    let mut group = c.benchmark_group("keystream_64B");
    group.throughput(Throughput::Bytes(64));

    let aes128 = AesCtr::new(&[7u8; 16], 1).expect("valid key");
    group.bench_function("aes128_ctr", |b| {
        let mut ctr = 0u64;
        b.iter(|| {
            ctr = ctr.wrapping_add(4);
            std::hint::black_box(aes128.keystream64(ctr))
        })
    });

    let aes256 = AesCtr::new(&[7u8; 32], 1).expect("valid key");
    group.bench_function("aes256_ctr", |b| {
        let mut ctr = 0u64;
        b.iter(|| {
            ctr = ctr.wrapping_add(4);
            std::hint::black_box(aes256.keystream64(ctr))
        })
    });

    for rounds in Rounds::ALL {
        let chacha = ChaCha::new([7u8; 32], [3u8; 12], rounds);
        group.bench_with_input(
            BenchmarkId::new("chacha", rounds.count()),
            &chacha,
            |b, cipher| {
                let mut ctr = 0u32;
                b.iter(|| {
                    ctr = ctr.wrapping_add(1);
                    std::hint::black_box(cipher.keystream_block(ctr))
                })
            },
        );
    }
    group.finish();
}

fn bench_bulk_xts(c: &mut Criterion) {
    let mut group = c.benchmark_group("xts_sector");
    group.throughput(Throughput::Bytes(512));
    let xts = coldboot_crypto::xts::Xts::new(&[1u8; 32], &[2u8; 32]).expect("valid keys");
    group.bench_function("aes256_xts_encrypt_512B", |b| {
        let mut sector = vec![0xA5u8; 512];
        let mut unit = 0u64;
        b.iter(|| {
            unit = unit.wrapping_add(1);
            xts.encrypt_data_unit(unit, &mut sector).expect("aligned");
            std::hint::black_box(sector[0])
        })
    });
    group.finish();
}

criterion_group!(benches, bench_keystream, bench_bulk_xts);
criterion_main!(benches);
