//! The paper's headline demonstration as a library-usage example: steal a
//! VeraCrypt-style disk key from a locked, scrambled DDR4 machine.
//!
//! Run with: `cargo run --release --example cold_boot_attack`
//!
//! With `--dump-file PATH` the captured image is first written to a CBDF
//! container on disk and the attack then runs from the file in bounded
//! windows (`coldboot_dumpio`) instead of over the in-memory dump — the
//! realistic workflow, where capture and analysis are separate steps and
//! the image may be larger than RAM. The two paths recover identical keys.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, AttackReport, TransplantParams,
};
use coldboot::dump::MemoryDump;
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_dumpio::format::DumpMeta;
use coldboot_dumpio::pipeline::{attack_file, ScanControl, DEFAULT_WINDOW_BLOCKS};
use coldboot_dumpio::reader::DumpReader;
use coldboot_dumpio::writer::write_image;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::volume::MasterKeys;
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Writes the dump to `path` as CBDF, then attacks it from the file in
/// bounded windows. Byte-identical to `run_ddr4_attack` on the dump.
fn attack_via_dump_file(dump: &MemoryDump, path: &str, config: &AttackConfig) -> AttackReport {
    let meta = DumpMeta {
        capture_temp_c: -25.0, // paper_demo transplant conditions
        transfer_seconds: 5.0,
        ..DumpMeta::for_image(dump.base_addr(), dump.len() as u64)
    };
    let out = File::create(path).expect("create dump file");
    write_image(BufWriter::new(out), meta, dump.bytes()).expect("write CBDF");
    let file = File::open(path).expect("reopen dump file");
    let mut reader = DumpReader::new(BufReader::new(file)).expect("CBDF header");
    println!(
        "dump written to {path} ({} KiB CBDF); attacking from file",
        std::fs::metadata(path).map(|m| m.len() >> 10).unwrap_or(0)
    );
    attack_file(
        &mut reader,
        config,
        DEFAULT_WINDOW_BLOCKS,
        &ScanControl::new(),
    )
    .expect("file-backed attack")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dump_file = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--dump-file" => match args.next() {
                Some(path) => dump_file = Some(path),
                None => {
                    eprintln!("--dump-file needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}\nusage: cold_boot_attack [--dump-file PATH]");
                std::process::exit(2);
            }
        }
    }

    let geometry = DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    };

    // The victim: a locked machine with a mounted encrypted volume. The
    // expanded XTS key schedules sit in scrambled DRAM.
    let secret = b"medical records, client ledgers, signing keys";
    let volume = Volume::create(b"a very strong password", secret, &mut StdRng::seed_from_u64(9));
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 1);
    let capacity = victim.capacity() as usize;
    victim
        .insert_module(DramModule::with_quality(capacity, 7, 0.35))
        .expect("fresh socket");
    victim.fill(0).expect("module present"); // idle machine: mostly zeroed RAM
    MountedVolume::mount(&mut victim, &volume, b"a very strong password", 0x8_0070)
        .expect("password is correct");
    println!("victim ready: volume mounted, key schedules in scrambled DRAM");

    // The attack: freeze, pull, carry for five seconds, dump on our own
    // machine (same CPU generation; our scrambler stays on).
    let mut attacker = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 2);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(), // -25C, 5 seconds
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    println!("DIMM frozen, transplanted, dumped: {} KiB", dump.len() >> 10);

    // Mine scrambler keys, search for AES schedules, recover master keys —
    // from the CBDF file if asked, in memory otherwise.
    let config = AttackConfig::default();
    let report = match &dump_file {
        Some(path) => attack_via_dump_file(&dump, path, &config),
        None => run_ddr4_attack(&dump, &config),
    };
    println!(
        "mined {} candidate scrambler keys; {} AES schedules recovered",
        report.candidates.len(),
        report.outcome.recovered.len()
    );

    // Two adjacent AES-256 schedules = the XTS data + tweak keys.
    let mut recovered = report.outcome.recovered.clone();
    recovered.sort_by_key(|r| r.schedule_addr);
    let pair = recovered
        .windows(2)
        .find(|w| w[1].schedule_addr == w[0].schedule_addr + 240)
        .expect("attack failed to find the XTS key table");
    let keys = MasterKeys {
        data_key: pair[0].master_key.clone().try_into().expect("32 bytes"),
        tweak_key: pair[1].master_key.clone().try_into().expect("32 bytes"),
    };
    let plaintext = volume.decrypt_all(&keys).expect("master keys decrypt the volume");
    assert_eq!(&plaintext[..secret.len()], secret);
    println!(
        "volume decrypted WITHOUT the password: {:?}",
        String::from_utf8_lossy(&plaintext[..secret.len()])
    );
}
