//! The paper's headline demonstration as a library-usage example: steal a
//! VeraCrypt-style disk key from a locked, scrambled DDR4 machine.
//!
//! Run with: `cargo run --release --example cold_boot_attack`

use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::volume::MasterKeys;
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let geometry = DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    };

    // The victim: a locked machine with a mounted encrypted volume. The
    // expanded XTS key schedules sit in scrambled DRAM.
    let secret = b"medical records, client ledgers, signing keys";
    let volume = Volume::create(b"a very strong password", secret, &mut StdRng::seed_from_u64(9));
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 1);
    let capacity = victim.capacity() as usize;
    victim
        .insert_module(DramModule::with_quality(capacity, 7, 0.35))
        .expect("fresh socket");
    victim.fill(0).expect("module present"); // idle machine: mostly zeroed RAM
    MountedVolume::mount(&mut victim, &volume, b"a very strong password", 0x8_0070)
        .expect("password is correct");
    println!("victim ready: volume mounted, key schedules in scrambled DRAM");

    // The attack: freeze, pull, carry for five seconds, dump on our own
    // machine (same CPU generation; our scrambler stays on).
    let mut attacker = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 2);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(), // -25C, 5 seconds
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    println!("DIMM frozen, transplanted, dumped: {} KiB", dump.len() >> 10);

    // Mine scrambler keys, search for AES schedules, recover master keys.
    let report = run_ddr4_attack(&dump, &AttackConfig::default());
    println!(
        "mined {} candidate scrambler keys; {} AES schedules recovered",
        report.candidates.len(),
        report.outcome.recovered.len()
    );

    // Two adjacent AES-256 schedules = the XTS data + tweak keys.
    let mut recovered = report.outcome.recovered.clone();
    recovered.sort_by_key(|r| r.schedule_addr);
    let pair = recovered
        .windows(2)
        .find(|w| w[1].schedule_addr == w[0].schedule_addr + 240)
        .expect("attack failed to find the XTS key table");
    let keys = MasterKeys {
        data_key: pair[0].master_key.clone().try_into().expect("32 bytes"),
        tweak_key: pair[1].master_key.clone().try_into().expect("32 bytes"),
    };
    let plaintext = volume.decrypt_all(&keys).expect("master keys decrypt the volume");
    assert_eq!(&plaintext[..secret.len()], secret);
    println!(
        "volume decrypted WITHOUT the password: {:?}",
        String::from_utf8_lossy(&plaintext[..secret.len()])
    );
}
