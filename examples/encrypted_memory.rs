//! The paper's proposed fix in action: replace the scrambler with a ChaCha8
//! engine and the identical attack collapses — at zero exposed read
//! latency.
//!
//! Run with: `cargo run --release --example encrypted_memory`

use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_dram::timing::jedec_ddr4_cas_latencies_ns;
use coldboot_memenc::controller::{encrypted_machine, EncryptedBus};
use coldboot_memenc::engine::EngineKind;
use coldboot_memenc::overlap::OverlapModel;
use coldboot_scrambler::controller::BiosConfig;
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let geometry = DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    };

    // A future machine: same DDR4, but the "scrambler" is a ChaCha8 engine
    // keyed fresh each boot, with the physical address as the counter.
    let mut victim = encrypted_machine(
        Microarchitecture::Skylake,
        geometry,
        BiosConfig::default(),
        1,
        EngineKind::ChaCha8,
    );
    let capacity = victim.capacity() as usize;
    victim
        .insert_module(DramModule::new(capacity, 7))
        .expect("fresh socket");
    victim.fill(0).expect("module present");
    let volume = Volume::create(b"pw", b"still secret", &mut StdRng::seed_from_u64(4));
    MountedVolume::mount(&mut victim, &volume, b"pw", 0x8_0070).expect("mountable");
    println!("victim memory interface: {}", victim.transform_name());

    // Run the very same attack pipeline that defeats the scrambler.
    let mut attacker = encrypted_machine(
        Microarchitecture::Skylake,
        geometry,
        BiosConfig::default(),
        2,
        EngineKind::ChaCha8,
    );
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::lossless(),
    )
    .expect("transplant");
    let report = run_ddr4_attack(&dump, &AttackConfig::default());
    println!(
        "attack results: {} candidate keys mined, {} AES schedules recovered",
        report.candidates.len(),
        report.outcome.recovered.len()
    );
    assert!(report.candidates.is_empty() && report.outcome.recovered.is_empty());

    // And the defense costs nothing: the keystream beats every JEDEC CAS.
    let bus = EncryptedBus::new(EngineKind::ChaCha8, 99);
    println!(
        "\nChaCha8 64-byte keystream latency: {:.2} ns",
        bus.spec().block_latency_ns()
    );
    for cl in jedec_ddr4_cas_latencies_ns() {
        println!(
            "  CAS {:>5.2} ns -> exposed read latency {:.2} ns",
            cl,
            bus.exposed_read_latency_ns(cl)
        );
    }
    let model = OverlapModel::ddr4_2400(EngineKind::ChaCha8);
    println!(
        "zero exposed latency under all loads (1..18 outstanding CAS): {}",
        model.zero_exposed_under_all_loads()
    );
}
