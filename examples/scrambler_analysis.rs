//! The §III-A analysis framework walk-through: characterize an unknown
//! scrambler with the reverse cold boot technique, and demonstrate why the
//! old DDR3 attack dies on Skylake DDR4.
//!
//! Run with: `cargo run --release --example scrambler_analysis`

use coldboot::attack::{ddr3, ground_state_key_extraction, zero_fill_key_extraction};
use coldboot::dump::MemoryDump;
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_scrambler::controller::{BiosConfig, Machine, MachineError};
use std::collections::HashSet;

fn geometry() -> DramGeometry {
    DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 1,
        banks_per_group: 4,
        rows: 64,
        blocks_per_row: 64,
    }
}

fn main() -> Result<(), MachineError> {
    // --- Characterize the DDR4 scrambler two ways (they must agree). ---
    let mut skylake = Machine::new(
        Microarchitecture::Skylake,
        geometry(),
        BiosConfig::default(),
        1,
    );
    let via_zero_fill = zero_fill_key_extraction(&mut skylake, 10)?;
    skylake.remove_module()?;
    let via_ground_state = ground_state_key_extraction(&mut skylake, 11)?;
    assert_eq!(via_zero_fill, via_ground_state);
    let distinct: HashSet<_> = via_zero_fill.iter().map(|(_, k)| *k).collect();
    println!(
        "Skylake DDR4: zero-fill and ground-state profiling agree; {} distinct keys",
        distinct.len()
    );

    // --- The DDR3 universal-key trick, end to end. ---
    let mut snb = Machine::new(
        Microarchitecture::SandyBridge,
        geometry(),
        BiosConfig::default(),
        2,
    );
    let size = snb.capacity() as usize;
    snb.insert_module(DramModule::new(size, 20))?;
    snb.fill(0)?;
    let secret = b"DDR3 gives this up after one reboot";
    snb.write(0x3000, secret)?;
    snb.reboot(); // contents retained, scrambler re-seeded
    let view = MemoryDump::new(snb.dump(0, size)?, 0);
    let universal = ddr3::universal_key(&view).expect("dump has blocks");
    let plain = ddr3::descramble_all(&view, &universal.key);
    assert_eq!(&plain[0x3000..0x3000 + secret.len()], secret);
    println!(
        "DDR3: one universal key ({} observations) descrambles the whole dump: {:?}",
        universal.observations,
        String::from_utf8_lossy(&plain[0x3000..0x3000 + secret.len()])
    );

    // --- The same trick fails on DDR4. ---
    let mut skl = Machine::new(
        Microarchitecture::Skylake,
        geometry(),
        BiosConfig::default(),
        3,
    );
    skl.insert_module(DramModule::new(size, 30))?;
    skl.fill(0)?;
    skl.write(0x3000, secret)?;
    skl.reboot();
    let view = MemoryDump::new(skl.dump(0, size)?, 0);
    let universal = ddr3::universal_key(&view).expect("dump has blocks");
    let plain = ddr3::descramble_all(&view, &universal.key);
    let recovered = &plain[0x3000..0x3000 + secret.len()];
    assert_ne!(recovered, secret);
    println!(
        "DDR4: the universal-key attack recovers garbage ({} of {} bytes correct) — \
         as the paper shows, a new attack is needed",
        recovered
            .iter()
            // lint:allow(secret-print): prints only the count of matching bytes, not the secret
            .zip(secret.iter())
            .filter(|(a, b)| a == b)
            .count(),
        secret.len()
    );
    Ok(())
}
