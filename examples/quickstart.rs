//! Quickstart: build a simulated Skylake machine, watch the DDR4 scrambler
//! at work, and expose its keys with the paper's reverse-cold-boot trick.
//!
//! Run with: `cargo run --release --example quickstart`

use coldboot::attack::zero_fill_key_extraction;
use coldboot::litmus::{invariant_violations, scrambler_key_litmus};
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_scrambler::controller::{BiosConfig, Machine, MachineError};
use std::collections::HashSet;

fn main() -> Result<(), MachineError> {
    // A Skylake-style machine with a small DDR4 configuration.
    let geometry = DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    };
    let mut machine = Machine::new(
        Microarchitecture::Skylake,
        geometry,
        BiosConfig::default(),
        /* machine id */ 0xC0FFEE,
    );
    let capacity = machine.capacity() as usize;
    machine.insert_module(DramModule::new(capacity, 1))?;
    println!("machine: {} with {}", machine.transform_name(), geometry);

    // 1. Software sees plaintext; the DRAM cells hold scrambled bits.
    machine.write(0x1000, b"attack at dawn")?;
    let mut readback = [0u8; 14];
    machine.read(0x1000, &mut readback)?;
    let raw = machine.peek_raw(0x1000, 14)?;
    println!("\nsoftware view : {}", String::from_utf8_lossy(&readback));
    println!("raw DRAM cells: {raw:02x?}");

    // 2. Zeroed blocks expose the scrambler keystream (0 xor key = key).
    machine.write(0x2000, &[0u8; 64])?;
    let exposed = machine.peek_raw(0x2000, 64)?;
    let exposed_block: [u8; 64] = exposed.as_slice().try_into().expect("64 bytes");
    println!(
        "\na zeroed block exposes its scrambler key: litmus test -> {} ({} invariant violations)",
        // lint:allow(secret-print): prints the boolean litmus verdict, not key bytes
        scrambler_key_litmus(&exposed_block, 0),
        invariant_violations(&exposed_block),
    );

    // 3. The full §III-A analysis: extract every key in one pass.
    machine.remove_module()?;
    let keys = zero_fill_key_extraction(&mut machine, 2)?;
    let distinct: HashSet<_> = keys.iter().map(|(_, k)| *k).collect();
    println!(
        "\nreverse cold boot extraction: {} blocks -> {} distinct keys per channel (paper: 4096)",
        keys.len(),
        distinct.len()
    );
    let all_pass = keys.iter().all(|(_, k)| scrambler_key_litmus(k, 0));
    println!("all extracted keys satisfy the paper's litmus invariants: {all_pass}");
    Ok(())
}
