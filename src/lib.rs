//! Workspace umbrella crate.
//!
//! The reproduction's functionality lives in the member crates
//! (`coldboot-crypto`, `coldboot-dram`, `coldboot-scrambler`, `coldboot`,
//! `coldboot-veracrypt`, `coldboot-memenc`); this crate exists to host the
//! runnable examples under `examples/` and the cross-crate integration
//! tests under `tests/`, plus a few shared test fixtures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shared fixtures for the integration tests and examples.
pub mod test_support {
    use coldboot_scrambler::controller::{Machine, MachineError};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Fills a machine's memory with a mostly-idle workload: ~85 % zeroed
    /// blocks, the rest high-entropy. Small test machines give each of the
    /// 4096 scrambler key ids only a handful of blocks, so a high zero
    /// fraction is needed for every id to expose its key at least once.
    ///
    /// # Errors
    ///
    /// Fails if the machine has no module.
    pub fn fill_mostly_zero(machine: &mut Machine, seed: u64) -> Result<(), MachineError> {
        let capacity = machine.capacity() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut image = vec![0u8; capacity];
        for block in image.chunks_mut(64) {
            if rng.gen_bool(0.15) {
                rng.fill(block);
            }
        }
        for (i, chunk) in image.chunks(64 << 10).enumerate() {
            machine.write((i * (64 << 10)) as u64, chunk)?;
        }
        Ok(())
    }
}
