//! Integration test: the paper's full §III-C attack — freeze, transplant,
//! dump through an enabled scrambler, mine keys, find schedules, recover
//! the XTS master keys, decrypt the volume.

use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_repro::test_support::fill_mostly_zero;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::volume::MasterKeys;
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SECRET: &[u8] = b"integration-test secret: the quick brown fox";
const PASSWORD: &[u8] = b"pw";
const KEY_TABLE_ADDR: u64 = 0x9_0070;

fn geometry() -> DramGeometry {
    DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    }
}

fn victim_with_mounted_volume(volume: &Volume) -> Machine {
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 1);
    let size = victim.capacity() as usize;
    // Retentive module (99% charge retention at -25C/5s — the good end of
    // the paper's observed 90-99% range).
    victim
        .insert_module(DramModule::with_quality(size, 42, 0.35))
        .expect("fresh socket");
    fill_mostly_zero(&mut victim, 7).expect("module present");
    MountedVolume::mount(&mut victim, volume, PASSWORD, KEY_TABLE_ADDR).expect("mountable");
    victim
}

#[test]
fn full_cold_boot_attack_recovers_the_disk_keys() {
    let volume = Volume::create(PASSWORD, SECRET, &mut StdRng::seed_from_u64(1));
    let mut victim = victim_with_mounted_volume(&volume);
    let true_keys = volume.unlock(PASSWORD).expect("password is correct");

    // Transplant with realistic decay.
    let mut attacker =
        Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 2);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");

    let report = run_ddr4_attack(&dump, &AttackConfig::default());
    assert!(
        report.candidates.len() >= 4000,
        "mining found only {} candidates",
        report.candidates.len()
    );

    // Both schedules recovered, at the right addresses.
    let mut recovered = report.outcome.recovered.clone();
    recovered.sort_by_key(|r| r.schedule_addr);
    let pair = recovered
        .windows(2)
        .find(|w| w[1].schedule_addr == w[0].schedule_addr + 240)
        .expect("XTS schedule pair not found");
    assert_eq!(pair[0].schedule_addr, KEY_TABLE_ADDR);

    let stolen = MasterKeys {
        data_key: pair[0].master_key.clone().try_into().expect("32 bytes"),
        tweak_key: pair[1].master_key.clone().try_into().expect("32 bytes"),
    };
    assert_eq!(stolen.data_key, true_keys.data_key);
    assert_eq!(stolen.tweak_key, true_keys.tweak_key);

    // And they actually decrypt the volume without the password.
    let plaintext = volume.decrypt_all(&stolen).expect("keys decrypt");
    assert_eq!(&plaintext[..SECRET.len()], SECRET);
}

#[test]
fn clean_unmount_defeats_the_attack() {
    // §II-B: erasing keys at unmount protects — if the attacker arrives
    // afterwards.
    let volume = Volume::create(PASSWORD, SECRET, &mut StdRng::seed_from_u64(2));
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 1);
    let size = victim.capacity() as usize;
    victim
        .insert_module(DramModule::with_quality(size, 43, 0.35))
        .expect("fresh socket");
    fill_mostly_zero(&mut victim, 8).expect("module present");
    let mounted =
        MountedVolume::mount(&mut victim, &volume, PASSWORD, KEY_TABLE_ADDR).expect("mountable");
    mounted.unmount(&mut victim).expect("unmount zeroizes");

    let mut attacker =
        Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 2);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::lossless(),
    )
    .expect("transplant");
    let report = run_ddr4_attack(&dump, &AttackConfig::default());
    assert!(
        report.outcome.recovered.is_empty(),
        "attack found keys after a clean unmount"
    );
}

#[test]
fn tresor_style_key_storage_defeats_the_attack() {
    // §II-B: register-only key storage (TRESOR / Loop-Amnesia) keeps the
    // schedules out of DRAM entirely; the identical attack finds nothing
    // even with a lossless transplant.
    use coldboot_veracrypt::mount::KeyStoragePolicy;
    let volume = Volume::create(PASSWORD, SECRET, &mut StdRng::seed_from_u64(9));
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 4);
    let size = victim.capacity() as usize;
    victim
        .insert_module(DramModule::new(size, 44))
        .expect("fresh socket");
    fill_mostly_zero(&mut victim, 9).expect("module present");
    let mounted = MountedVolume::mount_with_policy(
        &mut victim,
        &volume,
        PASSWORD,
        KEY_TABLE_ADDR,
        KeyStoragePolicy::RegistersOnly,
    )
    .expect("mountable");
    // The volume is live and readable...
    let sector = mounted.read_sector(&mut victim, &volume, 0).expect("readable");
    assert_eq!(&sector[..SECRET.len()], SECRET);

    // ...but the attack comes up empty.
    let mut attacker =
        Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 5);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::lossless(),
    )
    .expect("transplant");
    let report = run_ddr4_attack(&dump, &AttackConfig::default());
    assert!(
        report.outcome.recovered.is_empty(),
        "register-stored keys leaked into DRAM"
    );
}
