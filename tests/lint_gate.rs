//! Tier-1 CI gate: the workspace must be clean under `coldboot-lint`.
//!
//! Runs the in-tree analyzer (crates/analyzer) — token rules plus the
//! AST/dataflow rules (`lossy-len-cast`, `unbounded-loop`, `untimed-io`,
//! `lock-order`, `secret-taint`) and the v4 concurrency families on the
//! thread-role graph (`atomic-ordering`, `blocking-in-event-loop`,
//! `channel-deadlock`, `join-leak`) — over every `.rs` file in the
//! repository with the checked-in `lint.toml` allowlist, in the strict
//! mode the CLI's `--deny` maps to: any finding fails, and stale
//! `lint.toml` allow entries count as findings too. Seeding a violation —
//! e.g. `println!("{:?}", round_key)` in crates/crypto, `data.len() as
//! u32` in the dumpio writer, deleting the dumpd `ErrorKind::Interrupted`
//! retry arm, or a `thread::sleep` in the cluster event loop — makes this
//! test fail with the offending file, line, and rule in the message.

use coldboot_analyzer::{
    lint_sources, lint_workspace_with, load_config, render_sarif, render_text, LintConfig,
    LintOptions, SourceFile, RULE_IDS,
};
use std::path::Path;

#[test]
fn workspace_has_no_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let config = load_config(root).expect("lint.toml parses");
    let opts = LintOptions {
        threads: 0,
        cache_dir: None, // always exercise the full analysis in CI
        check_stale_allows: true,
    };
    let run = lint_workspace_with(root, &config, &opts).expect("workspace sources are readable");
    // Publish the machine-readable report for CI annotation regardless of
    // outcome; a clean run writes a SARIF log with zero results.
    let sarif_path = root.join("target").join("lint.sarif");
    if let Some(dir) = sarif_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&sarif_path, render_sarif(&run.findings)).expect("write target/lint.sarif");
    assert!(
        run.findings.is_empty(),
        "coldboot-lint found {} issue(s):\n{}",
        run.findings.len(),
        render_text(&run.findings)
    );
}

#[test]
fn gate_denies_the_concurrency_families() {
    // The four v4 families are registered (so `--deny` and this gate
    // police them) and actually fire: a seeded sleep-under-event-loop
    // violation must produce exactly the new rule, proving the gate's
    // clean pass above is an actual check, not a missing pass.
    for family in [
        "atomic-ordering",
        "blocking-in-event-loop",
        "channel-deadlock",
        "join-leak",
    ] {
        assert!(RULE_IDS.contains(&family), "{family} not registered");
    }
    let seeded = vec![SourceFile {
        path: "crates/cluster/src/seeded.rs".to_string(),
        source: "use std::thread;\n\
                 use std::time::Duration;\n\
                 pub fn start_event_loop() -> thread::JoinHandle<()> {\n\
                 \x20   thread::spawn(|| poll())\n\
                 }\n\
                 fn poll() {\n\
                 \x20   thread::sleep(Duration::from_millis(1));\n\
                 }\n"
            .to_string(),
    }];
    let findings = lint_sources(&seeded, &LintConfig::default());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "blocking-in-event-loop");
    assert_eq!(findings[0].line, 7);
}

#[test]
fn warm_cache_run_reanalyzes_nothing() {
    // The incremental contract over the real workspace: after one run has
    // populated a cache, an unchanged workspace re-parses zero files and
    // reports the identical (empty) finding set.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let config = load_config(root).expect("lint.toml parses");
    let cache_dir = std::env::temp_dir().join(format!(
        "coldboot-lint-gate-cache-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let opts = LintOptions {
        threads: 0,
        cache_dir: Some(cache_dir.clone()),
        check_stale_allows: true,
    };
    let cold = lint_workspace_with(root, &config, &opts).expect("cold run");
    let warm = lint_workspace_with(root, &config, &opts).expect("warm run");
    assert_eq!(warm.stats.files, cold.stats.files);
    assert_eq!(
        warm.stats.reanalyzed, 0,
        "warm run over an unchanged workspace must re-parse nothing \
         ({} of {} files re-analyzed)",
        warm.stats.reanalyzed, warm.stats.files
    );
    assert_eq!(warm.findings, cold.findings);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
