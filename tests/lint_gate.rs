//! Tier-1 CI gate: the workspace must be clean under `coldboot-lint`.
//!
//! Runs the in-tree secret-hygiene analyzer (crates/analyzer) over every
//! `.rs` file in the repository with the checked-in `lint.toml` allowlist
//! and fails on any finding. Seeding a violation — e.g.
//! `println!("{:?}", round_key)` inside crates/crypto — makes this test
//! fail with the offending file, line, and rule in the message.

use coldboot_analyzer::{lint_workspace, load_config, render_text};
use std::path::Path;

#[test]
fn workspace_has_no_lint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let config = load_config(root).expect("lint.toml parses");
    let findings = lint_workspace(root, &config).expect("workspace sources are readable");
    assert!(
        findings.is_empty(),
        "coldboot-lint found {} issue(s):\n{}",
        findings.len(),
        render_text(&findings)
    );
}
