//! Integration test: the paper's §IV claim — replacing the scrambler with
//! a strong counter-mode cipher stops the cold boot attack cold, at zero
//! exposed read latency.

use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot::stats::obfuscation_report;
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_dram::timing::jedec_ddr4_cas_latencies_ns;
use coldboot_memenc::controller::{encrypted_machine, EncryptedBus};
use coldboot_memenc::engine::EngineKind;
use coldboot_memenc::overlap::OverlapModel;
use coldboot_repro::test_support::fill_mostly_zero;
use coldboot_scrambler::controller::BiosConfig;
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn geometry() -> DramGeometry {
    DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    }
}

#[test]
fn attack_fails_against_encrypted_memory() {
    for kind in [EngineKind::ChaCha8, EngineKind::Aes128] {
        let mut victim =
            encrypted_machine(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 1, kind);
        let size = victim.capacity() as usize;
        victim
            .insert_module(DramModule::new(size, 5))
            .expect("fresh socket");
        fill_mostly_zero(&mut victim, 3).expect("module present");
        let volume = Volume::create(b"pw", b"secret payload", &mut StdRng::seed_from_u64(6));
        MountedVolume::mount(&mut victim, &volume, b"pw", 0x8_0070).expect("mountable");

        let mut attacker =
            encrypted_machine(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 2, kind);
        let dump = capture_dump_via_transplant(
            &mut victim,
            &mut attacker,
            TransplantParams::paper_demo(),
            DecayModel::lossless(),
        )
        .expect("transplant");

        // The image is cryptographically featureless.
        let stats = obfuscation_report(&dump);
        assert!(stats.entropy_bits > 7.99, "{kind}: entropy {}", stats.entropy_bits);
        assert_eq!(
            stats.duplicate_fraction, 0.0,
            "{kind}: correlated blocks in encrypted memory"
        );

        // The attack pipeline finds nothing at all.
        let report = run_ddr4_attack(&dump, &AttackConfig::default());
        assert!(report.candidates.is_empty(), "{kind}: mined scrambler keys");
        assert!(report.outcome.recovered.is_empty(), "{kind}: recovered keys");
    }
}

#[test]
fn viable_engines_have_zero_exposed_latency() {
    // Functional path (unloaded read, fastest JEDEC part).
    for kind in [EngineKind::Aes128, EngineKind::Aes256, EngineKind::ChaCha8] {
        let bus = EncryptedBus::new(kind, 1);
        for cl in jedec_ddr4_cas_latencies_ns() {
            assert_eq!(bus.exposed_read_latency_ns(cl), 0.0, "{kind} at CL {cl}");
        }
    }
    // Under load, only ChaCha8 stays fully hidden (the paper's Key Idea 2).
    assert!(OverlapModel::ddr4_2400(EngineKind::ChaCha8).zero_exposed_under_all_loads());
    assert!(!OverlapModel::ddr4_2400(EngineKind::Aes128).zero_exposed_under_all_loads());
}

#[test]
fn encrypted_machine_still_works_as_memory() {
    let mut m =
        encrypted_machine(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 9, EngineKind::ChaCha8);
    let size = m.capacity() as usize;
    m.insert_module(DramModule::new(size, 1)).expect("fresh socket");
    let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    m.write(0x1234, &data).expect("in range");
    let mut buf = vec![0u8; data.len()];
    m.read(0x1234, &mut buf).expect("in range");
    assert_eq!(buf, data);
    // Rebooting rolls the keys: retained ciphertext becomes garbage.
    m.reboot();
    m.read(0x1234, &mut buf).expect("in range");
    assert_ne!(buf, data);
}
