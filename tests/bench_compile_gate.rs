//! Tier-1 CI gate: every criterion benchmark must at least compile.
//!
//! Benchmarks are not built by `cargo test`, so bench-only breakage (an API
//! rename, a moved type) otherwise survives until someone actually runs the
//! perf suite. `cargo bench --no-run` compiles every bench target without
//! executing a single iteration, which keeps the gate fast.

use std::path::Path;
use std::process::Command;

fn bench_no_run(extra_args: &[&str]) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(&cargo)
        .args(["bench", "--no-run"])
        .args(extra_args)
        .current_dir(root)
        .output()
        .expect("failed to spawn cargo bench --no-run");
    assert!(
        output.status.success(),
        "cargo bench --no-run {} failed ({}):\n{}",
        extra_args.join(" "),
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn benches_compile() {
    bench_no_run(&["--workspace"]);
}

#[test]
fn dumpio_bench_compiles_standalone() {
    // The dumpio bench has a custom `main` (it records BENCH_dumpio.json —
    // including the serial-vs-pipelined attack_file stage — before handing
    // over to criterion); gate it individually so a pipeline API change
    // can't silently orphan the report.
    bench_no_run(&["-p", "coldboot-bench", "--bench", "dumpio_throughput"]);
}

#[test]
fn metrics_overhead_bench_compiles() {
    // The observability acceptance bench (BENCH_metrics.json, the ≤2%
    // attached-overhead bound) also has a custom `main`; gate it
    // individually so a metrics API change can't silently orphan it.
    bench_no_run(&["-p", "coldboot-bench", "--bench", "metrics_overhead"]);
}

#[test]
fn lint_throughput_bench_compiles() {
    // The analyzer throughput bench (BENCH_lint.json: cold vs warm cache,
    // sequential vs parallel, plus the v3 interprocedural summary phase)
    // has a custom `main` too; gate it so an analyzer API change can't
    // silently orphan the perf report.
    bench_no_run(&["-p", "coldboot-bench", "--bench", "lint_throughput"]);
}

#[test]
fn cluster_throughput_bench_compiles() {
    // The coordinator load bench (BENCH_dumpd.json: jobs/sec plus p50/p99
    // queue-wait from the shard queue-wait histogram, 100+ clients against
    // 2–8 workers) has a custom `main`; gate it individually so a cluster
    // API change can't silently orphan the scaling report.
    bench_no_run(&["-p", "coldboot-bench", "--bench", "cluster_throughput"]);
}

#[test]
fn reconstruct_curve_bench_compiles() {
    // The recovery-rate-vs-decay curve (BENCH_reconstruct.json, the
    // channel-model reconstruction acceptance artifact) has a custom
    // `main`; gate it individually so a reconstruct API change can't
    // silently orphan the curve.
    bench_no_run(&["-p", "coldboot-bench", "--bench", "reconstruct_curve"]);
}

#[test]
fn bench_diff_compiles_and_handles_empty_history() {
    // `bench-diff` gates perf regressions off BENCH_history.jsonl; build
    // it and confirm the no-history case is a clean exit, so a rename in
    // the history schema can't silently orphan the regression gate.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(&cargo)
        .args(["run", "-p", "coldboot-bench", "--bin", "bench-diff", "--"])
        .arg(root.join("target").join("no-such-history.jsonl"))
        .current_dir(root)
        .output()
        .expect("failed to spawn cargo run bench-diff");
    assert!(
        output.status.success(),
        "bench-diff on a missing history must exit 0 ({}):\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
}
