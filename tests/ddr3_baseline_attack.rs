//! Integration test: the DDR3 baseline attack (Bauer et al.) that the
//! paper reproduces for comparison — frequency analysis instead of litmus
//! mining, same single-block AES key search — steals disk keys from a
//! SandyBridge machine just as the DDR4 attack does from Skylake.

use coldboot::attack::{capture_dump_via_transplant, ddr3, TransplantParams};
use coldboot::dump::MemoryDump;
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_repro::test_support::fill_mostly_zero;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::volume::MasterKeys;
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn geometry() -> DramGeometry {
    DramGeometry {
        channels: 2,
        ranks: 1,
        bank_groups: 1,
        banks_per_group: 4,
        rows: 32,
        blocks_per_row: 64,
    }
}

const SECRET: &[u8] = b"DDR3 never stood a chance";

#[test]
fn ddr3_frequency_attack_recovers_disk_keys() {
    let volume = Volume::create(b"pw", SECRET, &mut StdRng::seed_from_u64(3));
    let mut victim =
        Machine::new(Microarchitecture::SandyBridge, geometry(), BiosConfig::default(), 1);
    let size = victim.capacity() as usize;
    victim
        .insert_module(DramModule::with_quality(size, 5, 0.35))
        .expect("fresh socket");
    fill_mostly_zero(&mut victim, 4).expect("module present");
    MountedVolume::mount(&mut victim, &volume, b"pw", 0x2_0030).expect("mountable");

    // Same-generation attacker, scrambler enabled, frozen transplant.
    let mut attacker =
        Machine::new(Microarchitecture::SandyBridge, geometry(), BiosConfig::default(), 2);
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        TransplantParams::paper_demo(),
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");

    let report = ddr3::run_ddr3_attack(&dump, &ddr3::Ddr3AttackConfig::default());
    // Only 16 keys per channel: the candidate pool is tiny compared to the
    // DDR4 attack's thousands.
    assert!(report.candidates.len() <= 48);

    let mut recovered = report.outcome.recovered.clone();
    recovered.sort_by_key(|r| r.schedule_addr);
    let pair = recovered
        .windows(2)
        .find(|w| w[1].schedule_addr == w[0].schedule_addr + 240)
        .expect("XTS pair not recovered from DDR3 dump");
    let keys = MasterKeys {
        data_key: pair[0].master_key.clone().try_into().expect("32 bytes"),
        tweak_key: pair[1].master_key.clone().try_into().expect("32 bytes"),
    };
    let plaintext = volume.decrypt_all(&keys).expect("keys decrypt");
    assert_eq!(&plaintext[..SECRET.len()], SECRET);
}

#[test]
fn frequency_analysis_fails_on_ddr4_key_pool() {
    // The paper's motivation for the litmus test: 4096 keys per channel
    // starve each key of observations, so a frequency cutoff that works on
    // DDR3 no longer yields a usable pool within the same budget.
    let geometry = DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    };
    let mut machine = Machine::new(Microarchitecture::Skylake, geometry, BiosConfig::default(), 9);
    let size = machine.capacity() as usize;
    machine.insert_module(DramModule::new(size, 1)).expect("fresh socket");
    fill_mostly_zero(&mut machine, 5).expect("module present");
    let raw = MemoryDump::new(machine.peek_raw(0, size).expect("module present"), 0);
    let top = ddr3::frequency_keys(&raw, 48);
    // 48 candidates cover at most 48/4096 of the key pool — under 2%.
    let covered = (0..size as u64)
        .step_by(64)
        .filter(|&addr| {
            let k = machine.transform().keystream(addr);
            top.iter().any(|c| c.key == k)
        })
        .count();
    let fraction = covered as f64 / (size / 64) as f64;
    assert!(
        fraction < 0.05,
        "frequency analysis unexpectedly effective on DDR4: {fraction}"
    );
}
