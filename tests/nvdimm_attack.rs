//! Integration test: the paper's NVDIMM warning (§IV) — "the attacker
//! would not even need to cool down the modules before transferring data
//! to a separate machine". Against a non-volatile DIMM, a warm, slow,
//! sloppy transplant steals the keys that destroy a DRAM-based attempt
//! under the same conditions.

use coldboot::attack::{
    capture_dump_via_transplant, run_ddr4_attack, AttackConfig, TransplantParams,
};
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_dram::retention::DecayModel;
use coldboot_memenc::controller::encrypted_machine;
use coldboot_memenc::engine::EngineKind;
use coldboot_repro::test_support::fill_mostly_zero;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use coldboot_veracrypt::{MountedVolume, Volume};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn geometry() -> DramGeometry {
    DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    }
}

/// A lazy attacker: room temperature, a full minute between machines.
fn lazy_transplant() -> TransplantParams {
    TransplantParams {
        freeze_celsius: 20.0,
        transfer_seconds: 60.0,
    }
}

fn prepared_victim(module: DramModule, machine_id: u64) -> Machine {
    let mut victim =
        Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), machine_id);
    victim.insert_module(module).expect("fresh socket");
    fill_mostly_zero(&mut victim, machine_id).expect("module present");
    let volume = Volume::create(b"pw", b"nvdimm secret", &mut StdRng::seed_from_u64(machine_id));
    MountedVolume::mount(&mut victim, &volume, b"pw", 0x9_0070).expect("mountable");
    victim
}

#[test]
fn warm_attack_fails_on_dram_but_succeeds_on_nvdimm() {
    let size = DramGeometry::capacity_bytes(&geometry()) as usize;

    // DRAM victim, lazy transplant: everything decays away.
    let mut dram_victim = prepared_victim(DramModule::new(size, 1), 1);
    let mut attacker1 =
        Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 101);
    let dump = capture_dump_via_transplant(
        &mut dram_victim,
        &mut attacker1,
        lazy_transplant(),
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    let dram_report = run_ddr4_attack(&dump, &AttackConfig::default());
    assert!(
        dram_report.outcome.recovered.is_empty(),
        "a warm 60s transfer should destroy DRAM contents"
    );

    // NVDIMM victim, same lazy transplant: full recovery.
    let mut nvdimm_victim = prepared_victim(DramModule::nvdimm(size, 2), 2);
    let mut attacker2 =
        Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 102);
    let dump = capture_dump_via_transplant(
        &mut nvdimm_victim,
        &mut attacker2,
        lazy_transplant(),
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    let nvdimm_report = run_ddr4_attack(&dump, &AttackConfig::default());
    assert!(
        nvdimm_report.outcome.recovered.len() >= 2,
        "NVDIMM attack should recover both XTS schedules, got {}",
        nvdimm_report.outcome.recovered.len()
    );
    // And every recovery is pristine: zero decayed bits.
    for rec in &nvdimm_report.outcome.recovered {
        assert_eq!(rec.total_error_bits, 0);
    }
}

#[test]
fn encryption_protects_nvdimms_too() {
    // §IV's conclusion: "strong full memory encryption is going to be even
    // more crucial on such systems."
    let size = DramGeometry::capacity_bytes(&geometry()) as usize;
    let mut victim = encrypted_machine(
        Microarchitecture::Skylake,
        geometry(),
        BiosConfig::default(),
        3,
        EngineKind::ChaCha8,
    );
    victim
        .insert_module(DramModule::nvdimm(size, 3))
        .expect("fresh socket");
    fill_mostly_zero(&mut victim, 3).expect("module present");
    let volume = Volume::create(b"pw", b"nvdimm secret", &mut StdRng::seed_from_u64(3));
    MountedVolume::mount(&mut victim, &volume, b"pw", 0x9_0070).expect("mountable");

    let mut attacker = encrypted_machine(
        Microarchitecture::Skylake,
        geometry(),
        BiosConfig::default(),
        103,
        EngineKind::ChaCha8,
    );
    let dump = capture_dump_via_transplant(
        &mut victim,
        &mut attacker,
        lazy_transplant(),
        DecayModel::paper_calibrated(),
    )
    .expect("transplant");
    let report = run_ddr4_attack(&dump, &AttackConfig::default());
    assert!(report.candidates.is_empty());
    assert!(report.outcome.recovered.is_empty());
}
