//! Integration test: the §II-C / §III-B generational story, exercised
//! through complete machines — DDR3's fatal reboot collapse, DDR4's
//! resistance to the old attack, and the BIOS seed-reuse bug.

use coldboot::attack::{ddr3, zero_fill_key_extraction};
use coldboot::dump::MemoryDump;
use coldboot::litmus::{mine_candidate_keys, scrambler_key_litmus, MiningConfig};
use coldboot::stats;
use coldboot_dram::geometry::DramGeometry;
use coldboot_dram::mapping::Microarchitecture;
use coldboot_dram::module::DramModule;
use coldboot_scrambler::controller::{BiosConfig, Machine};
use std::collections::HashSet;

fn geometry() -> DramGeometry {
    DramGeometry {
        channels: 1,
        ranks: 1,
        bank_groups: 2,
        banks_per_group: 2,
        rows: 64,
        blocks_per_row: 64,
    }
}

#[test]
fn ddr3_reboot_collapse_recovers_plaintext() {
    let mut m = Machine::new(Microarchitecture::SandyBridge, geometry(), BiosConfig::default(), 1);
    let size = m.capacity() as usize;
    m.insert_module(DramModule::new(size, 1)).expect("fresh socket");
    m.fill(0).expect("module present");
    let secret = b"sixteen keys collapse to one";
    m.write(0x5000, secret).expect("in range");
    m.reboot();
    let view = MemoryDump::new(m.dump(0, size).expect("module present"), 0);
    let uni = ddr3::universal_key(&view).expect("dump has blocks");
    let plain = ddr3::descramble_all(&view, &uni.key);
    assert_eq!(&plain[0x5000..0x5000 + secret.len()], secret);
}

#[test]
fn ddr4_resists_the_ddr3_attack() {
    let mut m = Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 2);
    let size = m.capacity() as usize;
    m.insert_module(DramModule::new(size, 1)).expect("fresh socket");
    m.fill(0).expect("module present");
    let secret = b"sixteen keys collapse to one";
    m.write(0x5000, secret).expect("in range");
    m.reboot();
    let view = MemoryDump::new(m.dump(0, size).expect("module present"), 0);
    let uni = ddr3::universal_key(&view).expect("dump has blocks");
    let plain = ddr3::descramble_all(&view, &uni.key);
    assert_ne!(&plain[0x5000..0x5000 + secret.len()], secret);
    // The after-reboot view has thousands of keystream classes, not one.
    let mut zeros = vec![0u8; size];
    zeros[0x5000..0x5000 + secret.len()].copy_from_slice(secret);
    let classes = stats::cross_dump_xor_classes(&view, &MemoryDump::new(zeros, 0));
    assert!(classes >= 4096, "only {classes} classes");
}

#[test]
fn ddr4_key_pool_is_256x_larger_than_ddr3() {
    let mut ddr3_machine =
        Machine::new(Microarchitecture::SandyBridge, geometry(), BiosConfig::default(), 3);
    let mut ddr4_machine =
        Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 4);
    let k3: HashSet<_> = zero_fill_key_extraction(&mut ddr3_machine, 1)
        .expect("socket free")
        .into_iter()
        .map(|(_, k)| k)
        .collect();
    let k4: HashSet<_> = zero_fill_key_extraction(&mut ddr4_machine, 2)
        .expect("socket free")
        .into_iter()
        .map(|(_, k)| k)
        .collect();
    assert_eq!(k3.len(), 16);
    assert_eq!(k4.len(), 4096);
    assert_eq!(k4.len() / k3.len(), 256);
}

#[test]
fn mining_a_machine_dump_finds_true_scrambler_keys() {
    // The attacker-side view: mine keys from a dump taken through a second
    // scrambler and check each candidate against ground truth (victim key
    // xor attacker key).
    let mut victim = Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 5);
    let size = victim.capacity() as usize;
    victim.insert_module(DramModule::new(size, 9)).expect("fresh socket");
    victim.fill(0).expect("module present");
    let module = victim.remove_module().expect("socketed");
    let mut attacker =
        Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 6);
    attacker.insert_module(module).expect("fresh socket");
    let dump = MemoryDump::new(attacker.dump(0, size).expect("module present"), 0);

    let found = mine_candidate_keys(&dump, &MiningConfig::default());
    assert_eq!(found.len(), 4096);
    let truth: HashSet<[u8; 64]> = (0..size as u64)
        .step_by(64)
        .map(|addr| {
            let kv = victim.transform().keystream(addr);
            let ka = attacker.transform().keystream(addr);
            core::array::from_fn(|i| kv[i] ^ ka[i])
        })
        .collect();
    for cand in &found {
        assert!(truth.contains(&cand.key), "mined a non-key");
        assert!(scrambler_key_litmus(&cand.key, 0));
    }
}

#[test]
fn buggy_bios_reuses_keys_across_reboots() {
    let mut m = Machine::new(
        Microarchitecture::Skylake,
        geometry(),
        BiosConfig::buggy_seed_reuse(),
        7,
    );
    let size = m.capacity() as usize;
    m.insert_module(DramModule::new(size, 1)).expect("fresh socket");
    let secret = b"the vendor never reseeded";
    m.write(0x7000, secret).expect("in range");
    m.reboot();
    // Same seed, same keys: the data survives reboot in plaintext view.
    let mut buf = vec![0u8; secret.len()];
    m.read(0x7000, &mut buf).expect("in range");
    assert_eq!(&buf, secret);
}

#[test]
fn key_mapping_inference_identifies_selector_bits() {
    // The paper's §III-B conclusion ("keys appear to be generated using ...
    // portions of the physical address bits"), derived automatically.
    let mut ddr4_machine =
        Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 11);
    let obs = zero_fill_key_extraction(&mut ddr4_machine, 3).expect("socket free");
    let inf = coldboot::keymap::infer_key_mapping(&obs).expect("non-empty observations");
    assert_eq!(inf.distinct_keys, 4096);
    assert_eq!(inf.period_blocks, Some(4096));
    // 12 selector bits => 4096-key pool, exactly the low block-index bits.
    assert_eq!(inf.selector_bits, (6..18).collect::<Vec<u32>>());
    assert_eq!(inf.implied_pool_size(), 4096);

    let mut ddr3_machine =
        Machine::new(Microarchitecture::SandyBridge, geometry(), BiosConfig::default(), 12);
    let obs = zero_fill_key_extraction(&mut ddr3_machine, 4).expect("socket free");
    let inf = coldboot::keymap::infer_key_mapping(&obs).expect("non-empty observations");
    assert_eq!(inf.distinct_keys, 16);
    assert_eq!(inf.selector_bits, (6..10).collect::<Vec<u32>>());
}

#[test]
fn bios_toggle_rig_reads_scrambled_cells_in_place() {
    // §III-A's fastest analysis setup: "a DDR4-based motherboard that
    // allowed us to reboot an initially scrambled machine with the memory
    // scramblers turned off — without destroying the scrambled DRAM
    // contents from the previous boot cycle."
    let mut m = Machine::new(Microarchitecture::Skylake, geometry(), BiosConfig::default(), 21);
    let size = m.capacity() as usize;
    m.insert_module(DramModule::new(size, 77)).expect("fresh socket");
    m.fill(0).expect("module present");
    let keys_truth: Vec<[u8; 64]> = {
        use coldboot_scrambler::MemoryTransform;
        (0..size as u64)
            .step_by(64)
            .map(|addr| m.transform().keystream(addr))
            .collect()
    };

    // Enter BIOS setup, disable the scrambler, warm-reboot.
    m.reboot_with_bios(BiosConfig::scrambler_disabled());
    assert_eq!(m.transform_name(), "plaintext (no scrambling)");

    // The previous boot's scrambled zeros are now read raw: every block is
    // the old boot's key.
    let view = m.dump(0, size).expect("module present");
    for (i, block) in view.chunks_exact(64).enumerate() {
        assert_eq!(block, &keys_truth[i][..], "block {i}");
    }
}
